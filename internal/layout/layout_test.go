package layout

import (
	"testing"

	"repro/internal/clocking"
	"repro/internal/network"
)

func TestTopologyRoundTrip(t *testing.T) {
	for _, topo := range []Topology{Cartesian, HexOddRow} {
		back, err := TopologyFromString(topo.String())
		if err != nil || back != topo {
			t.Errorf("round trip %v failed: %v", topo, err)
		}
	}
	if _, err := TopologyFromString("weird"); err == nil {
		t.Error("TopologyFromString accepted junk")
	}
}

func TestCartesianAdjacency(t *testing.T) {
	a := C(3, 3)
	for _, b := range []Coord{C(4, 3), C(2, 3), C(3, 4), C(3, 2)} {
		if !AdjacentXY(Cartesian, a, b) {
			t.Errorf("%v should be adjacent to %v", a, b)
		}
	}
	for _, b := range []Coord{C(4, 4), C(2, 2), C(3, 3), C(5, 3)} {
		if AdjacentXY(Cartesian, a, b) {
			t.Errorf("%v should not be adjacent to %v", a, b)
		}
	}
}

func TestHexAdjacency(t *testing.T) {
	// Even row y=2: diagonals to the west.
	a := C(3, 2)
	want := []Coord{C(4, 2), C(2, 2), C(3, 1), C(2, 1), C(3, 3), C(2, 3)}
	for _, b := range want {
		if !AdjacentXY(HexOddRow, a, b) {
			t.Errorf("even row: %v should be adjacent to %v", a, b)
		}
	}
	if AdjacentXY(HexOddRow, a, C(4, 1)) || AdjacentXY(HexOddRow, a, C(4, 3)) {
		t.Error("even row: eastern diagonals must not be adjacent")
	}
	// Odd row y=3: diagonals to the east.
	a = C(3, 3)
	want = []Coord{C(4, 3), C(2, 3), C(3, 2), C(4, 2), C(3, 4), C(4, 4)}
	for _, b := range want {
		if !AdjacentXY(HexOddRow, a, b) {
			t.Errorf("odd row: %v should be adjacent to %v", a, b)
		}
	}
	if AdjacentXY(HexOddRow, a, C(2, 2)) || AdjacentXY(HexOddRow, a, C(2, 4)) {
		t.Error("odd row: western diagonals must not be adjacent")
	}
}

func TestHexAdjacencySymmetric(t *testing.T) {
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			a := C(x, y)
			for _, d := range neighborOffsets(HexOddRow, y) {
				b := C(x+d[0], y+d[1])
				if !AdjacentXY(HexOddRow, b, a) {
					t.Fatalf("adjacency not symmetric: %v -> %v", a, b)
				}
			}
		}
	}
}

func TestPlaceAndConnect(t *testing.T) {
	l := New("t", Cartesian, clocking.TwoDDWave)
	if err := l.Place(C(0, 0), Tile{Fn: network.PI, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Place(C(1, 0), Tile{Fn: network.Buf, Wire: true, Incoming: []Coord{C(0, 0)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Place(C(0, 0), Tile{Fn: network.PI}); err == nil {
		t.Error("double placement accepted")
	}
	if err := l.Place(C(-1, 0), Tile{Fn: network.PI}); err == nil {
		t.Error("negative coordinate accepted")
	}
	if err := l.Place(C(2, 0).Above(), Tile{Fn: network.And}); err == nil {
		t.Error("gate on crossing layer accepted")
	}
	outs := l.Outgoing(C(0, 0))
	if len(outs) != 1 || outs[0] != C(1, 0) {
		t.Errorf("outgoing = %v", outs)
	}
	if l.NumTiles() != 2 {
		t.Errorf("NumTiles = %d", l.NumTiles())
	}
}

func TestClearRequiresDisconnect(t *testing.T) {
	l := New("t", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(1, 0), Tile{Fn: network.PO, Name: "f", Incoming: []Coord{C(0, 0)}})
	if err := l.Clear(C(0, 0)); err == nil {
		t.Fatal("Clear of driving tile accepted")
	}
	if err := l.Disconnect(C(0, 0), C(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Clear(C(0, 0)); err != nil {
		t.Fatal(err)
	}
	if !l.IsEmpty(C(0, 0)) {
		t.Error("tile still occupied after Clear")
	}
	if err := l.Clear(C(5, 5)); err != nil {
		t.Error("Clear of empty tile should be a no-op")
	}
}

func TestBoundingBoxAndArea(t *testing.T) {
	l := New("t", Cartesian, clocking.TwoDDWave)
	if w, h := l.BoundingBox(); w != 0 || h != 0 {
		t.Errorf("empty bbox = %dx%d", w, h)
	}
	l.MustPlace(C(2, 4), Tile{Fn: network.Buf, Wire: true})
	l.MustPlace(C(5, 1), Tile{Fn: network.Buf, Wire: true})
	w, h := l.BoundingBox()
	if w != 6 || h != 5 {
		t.Errorf("bbox = %dx%d, want 6x5", w, h)
	}
	if l.Area() != 30 {
		t.Errorf("area = %d, want 30", l.Area())
	}
	// The crossing layer does not extend the footprint area formula.
	l.MustPlace(C(5, 1).Above(), Tile{Fn: network.Buf, Wire: true})
	if l.Area() != 30 {
		t.Errorf("area with crossing = %d, want 30", l.Area())
	}
}

func TestOutgoingNeighbors2DDWave(t *testing.T) {
	l := New("t", Cartesian, clocking.TwoDDWave)
	// Zone(1,1)=2; only east (2,1) and south (1,2) have zone 3.
	outs := l.OutgoingNeighbors(C(1, 1))
	seen := make(map[Coord]bool)
	for _, c := range outs {
		seen[c.Ground()] = true
	}
	if len(seen) != 2 || !seen[C(2, 1)] || !seen[C(1, 2)] {
		t.Errorf("2DDWave outgoing of (1,1): %v", outs)
	}
	ins := l.IncomingNeighbors(C(1, 1))
	seen = make(map[Coord]bool)
	for _, c := range ins {
		seen[c.Ground()] = true
	}
	if len(seen) != 2 || !seen[C(0, 1)] || !seen[C(1, 0)] {
		t.Errorf("2DDWave incoming of (1,1): %v", ins)
	}
}

func TestOutgoingNeighborsRowHex(t *testing.T) {
	l := New("t", HexOddRow, clocking.Row)
	// ROW clocking on hex: all downward neighbors are outgoing.
	outs := l.OutgoingNeighbors(C(2, 2))
	seen := make(map[Coord]bool)
	for _, c := range outs {
		seen[c.Ground()] = true
	}
	if !seen[C(2, 3)] || !seen[C(1, 3)] {
		t.Errorf("hex ROW outgoing of (2,2): %v", outs)
	}
	if seen[C(1, 2)] || seen[C(3, 2)] {
		t.Error("same-row neighbors must not be outgoing under ROW")
	}
}

func TestCoordsDeterministicOrder(t *testing.T) {
	l := New("t", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(3, 1), Tile{Fn: network.Buf, Wire: true})
	l.MustPlace(C(0, 2), Tile{Fn: network.Buf, Wire: true})
	l.MustPlace(C(1, 1), Tile{Fn: network.Buf, Wire: true})
	l.MustPlace(C(1, 1).Above(), Tile{Fn: network.Buf, Wire: true})
	got := l.Coords()
	want := []Coord{C(1, 1), C(1, 1).Above(), C(3, 1), C(0, 2)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coords() = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	l := New("t", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(1, 0), Tile{Fn: network.PO, Name: "f", Incoming: []Coord{C(0, 0)}})
	c := l.Clone()
	if err := c.Disconnect(C(0, 0), C(1, 0)); err != nil {
		t.Fatal(err)
	}
	if len(l.Outgoing(C(0, 0))) != 1 {
		t.Error("mutating clone affected original")
	}
	if got := c.ComputeStats(); got.PIs != 1 || got.POs != 1 {
		t.Errorf("clone stats: %+v", got)
	}
}

func TestStats(t *testing.T) {
	l := New("s", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(1, 0), Tile{Fn: network.And, Node: 3, Incoming: []Coord{C(0, 0)}})
	l.MustPlace(C(2, 0), Tile{Fn: network.Buf, Wire: true, Incoming: []Coord{C(1, 0)}})
	l.MustPlace(C(2, 0).Above(), Tile{Fn: network.Buf, Wire: true})
	l.MustPlace(C(3, 0), Tile{Fn: network.PO, Name: "f", Incoming: []Coord{C(2, 0)}})
	s := l.ComputeStats()
	if s.Gates != 1 || s.Wires != 2 || s.Crossings != 1 || s.PIs != 1 || s.POs != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.Width != 4 || s.Height != 1 || s.Area != 4 {
		t.Errorf("geometry: %+v", s)
	}
}

func TestPIAndPOTiles(t *testing.T) {
	l := New("s", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(0, 1), Tile{Fn: network.PI, Name: "b"})
	l.MustPlace(C(1, 0), Tile{Fn: network.PO, Name: "f", Incoming: []Coord{C(0, 0)}})
	if got := l.PITiles(); len(got) != 2 {
		t.Errorf("PITiles = %v", got)
	}
	if got := l.POTiles(); len(got) != 1 || got[0] != C(1, 0) {
		t.Errorf("POTiles = %v", got)
	}
}

func TestClockingSchemesZoneRange(t *testing.T) {
	for _, s := range clocking.All() {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				z := s.Zone(x, y)
				if z < 0 || z >= s.NumZones {
					t.Fatalf("%s zone(%d,%d) = %d out of range", s.Name, x, y, z)
				}
			}
		}
	}
}

func TestClockingByName(t *testing.T) {
	s, err := clocking.ByName("2ddwave")
	if err != nil || s != clocking.TwoDDWave {
		t.Errorf("ByName(2ddwave) = %v, %v", s, err)
	}
	if _, err := clocking.ByName("nope"); err == nil {
		t.Error("ByName accepted junk")
	}
}

func Test2DDWaveDiagonalProperty(t *testing.T) {
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if clocking.TwoDDWave.Zone(x, y) != (x+y)%4 {
				t.Fatalf("2DDWave zone(%d,%d) != (x+y) mod 4", x, y)
			}
		}
	}
}

func TestRowSchemeProperty(t *testing.T) {
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if clocking.Row.Zone(x, y) != y%4 {
				t.Fatalf("ROW zone(%d,%d) != y mod 4", x, y)
			}
			if clocking.Columnar.Zone(x, y) != x%4 {
				t.Fatalf("Columnar zone(%d,%d) != x mod 4", x, y)
			}
		}
	}
}

func TestMoveTileRewritesConnections(t *testing.T) {
	l := New("mv", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(1, 0), Tile{Fn: network.Buf, Wire: true, Incoming: []Coord{C(0, 0)}})
	l.MustPlace(C(2, 0), Tile{Fn: network.PO, Name: "f", Incoming: []Coord{C(1, 0)}})

	if err := l.MoveTile(C(1, 0), C(1, 0).Above()); err != nil {
		t.Fatal(err)
	}
	if !l.IsEmpty(C(1, 0)) {
		t.Error("old position still occupied")
	}
	moved := l.At(C(1, 0).Above())
	if moved == nil || !moved.IsWire() {
		t.Fatal("tile not moved")
	}
	if moved.Incoming[0] != C(0, 0) {
		t.Error("incoming lost")
	}
	if outs := l.Outgoing(C(0, 0)); len(outs) != 1 || outs[0] != (C(1, 0).Above()) {
		t.Errorf("producer's outgoing not rewritten: %v", outs)
	}
	if l.At(C(2, 0)).Incoming[0] != (C(1, 0).Above()) {
		t.Error("consumer's incoming not rewritten")
	}
}

func TestMoveTileErrors(t *testing.T) {
	l := New("mv", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(1, 0), Tile{Fn: network.And})
	if err := l.MoveTile(C(5, 5), C(6, 6)); err == nil {
		t.Error("moved an empty tile")
	}
	if err := l.MoveTile(C(0, 0), C(1, 0)); err == nil {
		t.Error("moved onto an occupied tile")
	}
	if err := l.MoveTile(C(1, 0), C(1, 0).Above()); err == nil {
		t.Error("moved a gate to the crossing layer")
	}
	if err := l.MoveTile(C(1, 0), Coord{X: -1, Y: 0}); err == nil {
		t.Error("moved out of the grid")
	}
	if err := l.MoveTile(C(1, 0), C(1, 0)); err != nil {
		t.Errorf("no-op move failed: %v", err)
	}
}

func TestMoveIncomingReorders(t *testing.T) {
	l := New("mi", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(1, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(0, 1), Tile{Fn: network.PI, Name: "b"})
	l.MustPlace(C(1, 1), Tile{Fn: network.And, Incoming: []Coord{C(1, 0), C(0, 1)}})
	if idx := l.IncomingIndex(C(1, 1), C(0, 1)); idx != 1 {
		t.Fatalf("IncomingIndex = %d", idx)
	}
	if err := l.MoveIncoming(C(1, 1), 1, 0); err != nil {
		t.Fatal(err)
	}
	in := l.At(C(1, 1)).Incoming
	if in[0] != C(0, 1) || in[1] != C(1, 0) {
		t.Errorf("reorder failed: %v", in)
	}
	if err := l.MoveIncoming(C(1, 1), 5, 0); err == nil {
		t.Error("accepted out-of-range index")
	}
	if err := l.MoveIncoming(C(9, 9), 0, 0); err == nil {
		t.Error("accepted empty tile")
	}
	if idx := l.IncomingIndex(C(9, 9), C(0, 0)); idx != -1 {
		t.Error("IncomingIndex on empty tile")
	}
}

func TestShiftTranslatesEverything(t *testing.T) {
	l := New("sh", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(C(1, 0), Tile{Fn: network.PO, Name: "f", Incoming: []Coord{C(0, 0)}})
	if err := l.Shift(4, 8); err != nil {
		t.Fatal(err)
	}
	if l.At(C(4, 8)) == nil || l.At(C(5, 8)) == nil {
		t.Fatal("tiles not shifted")
	}
	if l.At(C(5, 8)).Incoming[0] != C(4, 8) {
		t.Error("incoming not shifted")
	}
	if outs := l.Outgoing(C(4, 8)); len(outs) != 1 || outs[0] != C(5, 8) {
		t.Errorf("outgoing not shifted: %v", outs)
	}
	if err := l.Shift(-10, 0); err == nil {
		t.Error("accepted out-of-grid shift")
	}
}

func TestConnectAndDisconnectErrors(t *testing.T) {
	l := New("c", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI, Name: "a"})
	if err := l.Connect(C(5, 5), C(0, 0)); err == nil {
		t.Error("connected from empty tile")
	}
	if err := l.Connect(C(0, 0), C(5, 5)); err == nil {
		t.Error("connected to empty tile")
	}
	if err := l.Disconnect(C(0, 0), C(5, 5)); err == nil {
		t.Error("disconnected empty destination")
	}
	l.MustPlace(C(1, 0), Tile{Fn: network.PO, Name: "f"})
	if err := l.Disconnect(C(0, 0), C(1, 0)); err == nil {
		t.Error("disconnected nonexistent connection")
	}
}

func TestPlaceLayerValidation(t *testing.T) {
	l := New("z", Cartesian, clocking.TwoDDWave)
	if err := l.Place(Coord{X: 0, Y: 0, Z: 2}, Tile{Fn: network.Buf, Wire: true}); err == nil {
		t.Error("accepted layer 2")
	}
	if err := l.Place(Coord{X: 0, Y: 0, Z: -1}, Tile{Fn: network.Buf, Wire: true}); err == nil {
		t.Error("accepted negative layer")
	}
}

func TestMustPlacePanics(t *testing.T) {
	l := New("p", Cartesian, clocking.TwoDDWave)
	l.MustPlace(C(0, 0), Tile{Fn: network.PI})
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlace did not panic on conflict")
		}
	}()
	l.MustPlace(C(0, 0), Tile{Fn: network.PI})
}

func TestTopologyStringUnknown(t *testing.T) {
	if s := Topology(99).String(); s == "" {
		t.Error("empty string for unknown topology")
	}
}
