// Package layout provides clocked gate-level layouts for field-coupled
// nanocomputing on Cartesian and hexagonal tile grids.
//
// A Layout assigns gates, wire segments, and I/O pins to clocked tiles.
// Tiles live on two stacked layers: the ground layer (Z = 0) holds gates
// and wires, the crossing layer (Z = 1) holds the upper wire of a wire
// crossing. Signal flow between tiles must follow the layout's clocking
// scheme: a tile in clock zone c feeds only adjacent tiles in zone
// (c+1) mod n.
package layout

import "fmt"

// Topology selects the tile grid shape.
type Topology uint8

const (
	// Cartesian is the square-tile grid used by QCA ONE layouts.
	Cartesian Topology = iota
	// HexOddRow is the pointy-top hexagonal grid with odd rows shifted
	// east (offset coordinates), used by Bestagon/SiDB layouts.
	HexOddRow
)

// String names the topology as used in .fgl files.
func (t Topology) String() string {
	switch t {
	case Cartesian:
		return "cartesian"
	case HexOddRow:
		return "hexagonal"
	}
	return fmt.Sprintf("topology(%d)", uint8(t))
}

// TopologyFromString parses a topology name written by String.
func TopologyFromString(s string) (Topology, error) {
	switch s {
	case "cartesian":
		return Cartesian, nil
	case "hexagonal":
		return HexOddRow, nil
	}
	return Cartesian, fmt.Errorf("layout: unknown topology %q", s)
}

// Coord addresses a tile. Z is 0 for the ground layer and 1 for the
// crossing layer.
type Coord struct {
	X, Y, Z int
}

// C is shorthand for a ground-layer coordinate.
func C(x, y int) Coord { return Coord{X: x, Y: y} }

// Above returns the same position on the crossing layer.
func (c Coord) Above() Coord { return Coord{X: c.X, Y: c.Y, Z: 1} }

// Ground returns the same position on the ground layer.
func (c Coord) Ground() Coord { return Coord{X: c.X, Y: c.Y, Z: 0} }

// SameXY reports whether two coordinates share a grid position,
// regardless of layer.
func (c Coord) SameXY(o Coord) bool { return c.X == o.X && c.Y == o.Y }

// String renders the coordinate as (x,y) or (x,y,z) for the upper layer.
func (c Coord) String() string {
	if c.Z == 0 {
		return fmt.Sprintf("(%d,%d)", c.X, c.Y)
	}
	return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z)
}

// Neighbor offset tables, hoisted to package level so that
// neighborOffsets is allocation-free on the A* expansion hot path
// (slicing a package-level array does not copy it).
var (
	cartesianOffsets = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	hexEvenOffsets   = [6][2]int{{1, 0}, {-1, 0}, {0, -1}, {-1, -1}, {0, 1}, {-1, 1}}
	hexOddOffsets    = [6][2]int{{1, 0}, {-1, 0}, {0, -1}, {1, -1}, {0, 1}, {1, 1}}
)

// neighborOffsets returns the XY offsets of all adjacent grid positions
// for the given topology at row y (hexagonal adjacency depends on row
// parity under odd-row offset coordinates). The returned slice aliases a
// shared table and must not be mutated.
//
//perf:hot
func neighborOffsets(t Topology, y int) [][2]int {
	switch t {
	case Cartesian:
		return cartesianOffsets[:]
	case HexOddRow:
		if y%2 == 0 { // even rows: diagonal neighbors to the west
			return hexEvenOffsets[:]
		}
		return hexOddOffsets[:]
	}
	//lint:ignore panicban,hotalloc unreachable backstop: the switch is exhaustive over the Topology constants
	panic(fmt.Sprintf("layout: bad topology %d", t))
}

// AdjacentXY reports whether a and b are neighboring grid positions
// (ignoring layers) under topology t.
func AdjacentXY(t Topology, a, b Coord) bool {
	for _, d := range neighborOffsets(t, a.Y) {
		if a.X+d[0] == b.X && a.Y+d[1] == b.Y {
			return true
		}
	}
	return false
}
