package layout

import (
	"fmt"
	"sort"

	"repro/internal/clocking"
	"repro/internal/network"
)

// Tile is the content of one occupied layout coordinate.
//
// Fn distinguishes the tile's role: network.PI and network.PO mark I/O
// pins, network.Buf with Wire=true marks a routing wire segment, and any
// other logic function marks a placed gate. Incoming lists the producer
// tiles in fanin order.
type Tile struct {
	Fn   network.Gate
	Wire bool // routing wire (not part of the logical node set)
	// Node is the network node this tile implements; Invalid for routing
	// wires inserted during physical design.
	Node network.ID
	// Name is the signal name for PI and PO tiles.
	Name     string
	Incoming []Coord
}

// IsWire reports whether the tile is a routing wire segment.
func (t *Tile) IsWire() bool { return t.Wire }

// Layout is a two-layer clocked gate-level layout.
type Layout struct {
	// Name is the implemented function's name (e.g. "mux21").
	Name string
	// Topo is the tile-grid topology.
	Topo Topology
	// Scheme assigns clock zones to grid positions.
	Scheme *clocking.Scheme
	// Library records the gate library the layout targets ("QCA ONE",
	// "Bestagon"); informational, enforced by internal/gatelib.
	Library string

	tiles    map[Coord]*Tile
	outgoing map[Coord][]Coord
}

// New creates an empty layout.
func New(name string, topo Topology, scheme *clocking.Scheme) *Layout {
	return &Layout{
		Name:     name,
		Topo:     topo,
		Scheme:   scheme,
		tiles:    make(map[Coord]*Tile),
		outgoing: make(map[Coord][]Coord),
	}
}

// Zone returns the clock zone of coordinate c under the layout's scheme.
// Both layers of a position share the zone.
func (l *Layout) Zone(c Coord) int { return l.Scheme.Zone(c.X, c.Y) }

// At returns the tile at c, or nil if the coordinate is empty.
func (l *Layout) At(c Coord) *Tile { return l.tiles[c] }

// IsEmpty reports whether no tile occupies c.
func (l *Layout) IsEmpty(c Coord) bool { return l.tiles[c] == nil }

// NumTiles returns the number of occupied coordinates on both layers.
func (l *Layout) NumTiles() int { return len(l.tiles) }

// Place puts a tile at c. It fails if c is occupied, lies outside the
// grid (negative coordinates), or uses an invalid layer.
func (l *Layout) Place(c Coord, t Tile) error {
	if c.X < 0 || c.Y < 0 {
		return fmt.Errorf("layout %q: coordinate %v is negative", l.Name, c)
	}
	if c.Z != 0 && c.Z != 1 {
		return fmt.Errorf("layout %q: coordinate %v uses invalid layer", l.Name, c)
	}
	if c.Z == 1 && !t.IsWire() {
		return fmt.Errorf("layout %q: only wires may occupy the crossing layer, got %s at %v", l.Name, t.Fn, c)
	}
	if l.tiles[c] != nil {
		return fmt.Errorf("layout %q: coordinate %v already occupied by %s", l.Name, c, l.tiles[c].Fn)
	}
	cp := t
	cp.Incoming = append([]Coord(nil), t.Incoming...)
	l.tiles[c] = &cp
	for _, src := range cp.Incoming {
		l.outgoing[src] = append(l.outgoing[src], c)
	}
	return nil
}

// MustPlace is Place for construction code that has already validated
// its coordinates; it panics on error.
func (l *Layout) MustPlace(c Coord, t Tile) {
	if err := l.Place(c, t); err != nil {
		panic(err)
	}
}

// Connect adds src as the next incoming signal of the tile at dst.
// Both tiles must exist.
func (l *Layout) Connect(src, dst Coord) error {
	if l.tiles[src] == nil {
		return fmt.Errorf("layout %q: connect from empty tile %v", l.Name, src)
	}
	t := l.tiles[dst]
	if t == nil {
		return fmt.Errorf("layout %q: connect to empty tile %v", l.Name, dst)
	}
	t.Incoming = append(t.Incoming, src)
	l.outgoing[src] = append(l.outgoing[src], dst)
	return nil
}

// Clear removes the tile at c along with its incoming connection records.
// Connections from c to other tiles must be removed by the caller first
// (see Disconnect); Clear fails if any remain.
func (l *Layout) Clear(c Coord) error {
	t := l.tiles[c]
	if t == nil {
		return nil
	}
	if len(l.outgoing[c]) > 0 {
		return fmt.Errorf("layout %q: tile %v still drives %v", l.Name, c, l.outgoing[c])
	}
	for _, src := range t.Incoming {
		l.removeOutgoing(src, c)
	}
	delete(l.tiles, c)
	delete(l.outgoing, c)
	return nil
}

// Disconnect removes the connection src -> dst.
func (l *Layout) Disconnect(src, dst Coord) error {
	t := l.tiles[dst]
	if t == nil {
		return fmt.Errorf("layout %q: disconnect to empty tile %v", l.Name, dst)
	}
	found := false
	for i, in := range t.Incoming {
		if in == src {
			t.Incoming = append(t.Incoming[:i], t.Incoming[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("layout %q: no connection %v -> %v", l.Name, src, dst)
	}
	l.removeOutgoing(src, dst)
	return nil
}

func (l *Layout) removeOutgoing(src, dst Coord) {
	outs := l.outgoing[src]
	for i, o := range outs {
		if o == dst {
			outs = append(outs[:i], outs[i+1:]...)
			break
		}
	}
	if len(outs) == 0 {
		delete(l.outgoing, src)
	} else {
		l.outgoing[src] = outs
	}
}

// Outgoing returns the tiles fed by the tile at c, in connection order.
// The returned slice must not be mutated.
func (l *Layout) Outgoing(c Coord) []Coord { return l.outgoing[c] }

// MoveTile relocates the tile at from to the empty coordinate to,
// rewriting all connection records referencing it. The layer rules of
// Place apply to the new position.
func (l *Layout) MoveTile(from, to Coord) error {
	t := l.tiles[from]
	if t == nil {
		return fmt.Errorf("layout %q: MoveTile from empty %v", l.Name, from)
	}
	if from == to {
		return nil
	}
	if l.tiles[to] != nil {
		return fmt.Errorf("layout %q: MoveTile target %v occupied", l.Name, to)
	}
	if to.Z == 1 && !t.IsWire() {
		return fmt.Errorf("layout %q: only wires may occupy the crossing layer", l.Name)
	}
	if to.X < 0 || to.Y < 0 || to.Z < 0 || to.Z > 1 {
		return fmt.Errorf("layout %q: MoveTile target %v out of grid", l.Name, to)
	}
	// Rewrite references in consumers' incoming lists.
	for _, out := range l.outgoing[from] {
		ot := l.tiles[out]
		for i, in := range ot.Incoming {
			if in == from {
				ot.Incoming[i] = to
			}
		}
	}
	// Rewrite references in producers' outgoing lists.
	for _, src := range t.Incoming {
		outs := l.outgoing[src]
		for i, o := range outs {
			if o == from {
				outs[i] = to
			}
		}
	}
	l.tiles[to] = t
	delete(l.tiles, from)
	if outs, ok := l.outgoing[from]; ok {
		l.outgoing[to] = outs
		delete(l.outgoing, from)
	}
	return nil
}

// IncomingIndex returns the position of src within dst's incoming list,
// or -1 when no such connection exists.
func (l *Layout) IncomingIndex(dst, src Coord) int {
	t := l.tiles[dst]
	if t == nil {
		return -1
	}
	for i, in := range t.Incoming {
		if in == src {
			return i
		}
	}
	return -1
}

// MoveIncoming repositions the incoming connection of dst currently at
// index from to index to, preserving the order of the others. Gate fanin
// order is semantically meaningful, so rerouting code uses this to
// restore the original port assignment after a Disconnect/Connect pair.
func (l *Layout) MoveIncoming(dst Coord, from, to int) error {
	t := l.tiles[dst]
	if t == nil {
		return fmt.Errorf("layout %q: MoveIncoming on empty tile %v", l.Name, dst)
	}
	if from < 0 || from >= len(t.Incoming) || to < 0 || to >= len(t.Incoming) {
		return fmt.Errorf("layout %q: MoveIncoming index out of range (%d -> %d of %d)", l.Name, from, to, len(t.Incoming))
	}
	v := t.Incoming[from]
	t.Incoming = append(t.Incoming[:from], t.Incoming[from+1:]...)
	rest := append([]Coord(nil), t.Incoming[to:]...)
	t.Incoming = append(append(t.Incoming[:to:to], v), rest...)
	return nil
}

// Shift translates every tile by (dx, dy), which must keep all
// coordinates non-negative. The caller is responsible for choosing a
// scheme-legal shift (multiples of the clocking periods).
func (l *Layout) Shift(dx, dy int) error {
	moved := make(map[Coord]*Tile, len(l.tiles))
	for c, t := range l.tiles {
		nc := Coord{X: c.X + dx, Y: c.Y + dy, Z: c.Z}
		if nc.X < 0 || nc.Y < 0 {
			return fmt.Errorf("layout %q: shift (%d,%d) moves %v out of the grid", l.Name, dx, dy, c)
		}
		for i := range t.Incoming {
			t.Incoming[i].X += dx
			t.Incoming[i].Y += dy
		}
		moved[nc] = t
	}
	movedOut := make(map[Coord][]Coord, len(l.outgoing))
	for c, outs := range l.outgoing {
		for i := range outs {
			outs[i].X += dx
			outs[i].Y += dy
		}
		movedOut[Coord{X: c.X + dx, Y: c.Y + dy, Z: c.Z}] = outs
	}
	l.tiles = moved
	l.outgoing = movedOut
	return nil
}

// Coords returns all occupied coordinates in deterministic (Y, X, Z)
// order.
func (l *Layout) Coords() []Coord {
	out := make([]Coord, 0, len(l.tiles))
	for c := range l.tiles {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Z < b.Z
	})
	return out
}

// BoundingBox returns the width and height of the smallest axis-aligned
// box enclosing all occupied tiles. An empty layout is 0 x 0.
func (l *Layout) BoundingBox() (w, h int) {
	maxX, maxY := -1, -1
	for c := range l.tiles {
		if c.X > maxX {
			maxX = c.X
		}
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	return maxX + 1, maxY + 1
}

// Area returns the bounding-box area in tiles, the figure of merit
// reported by MNT Bench (w*h; layers do not multiply the area).
func (l *Layout) Area() int {
	w, h := l.BoundingBox()
	return w * h
}

// AppendOutgoingNeighbors appends to dst the grid positions adjacent to
// c whose clock zone is (zone(c)+1) mod n — the only positions a signal
// at c may move to — and returns the extended slice. Both layers of each
// position are candidates. It is the allocation-free form of
// OutgoingNeighbors for callers (the A* router) that reuse a scratch
// buffer across expansions.
//
//perf:hot
func (l *Layout) AppendOutgoingNeighbors(c Coord, dst []Coord) []Coord {
	want := (l.Zone(c) + 1) % l.Scheme.NumZones
	for _, d := range neighborOffsets(l.Topo, c.Y) {
		x, y := c.X+d[0], c.Y+d[1]
		if x < 0 || y < 0 {
			continue
		}
		if l.Scheme.Zone(x, y) == want {
			dst = append(dst, Coord{X: x, Y: y, Z: 0}, Coord{X: x, Y: y, Z: 1})
		}
	}
	return dst
}

// OutgoingNeighbors lists the grid positions adjacent to c whose clock
// zone is (zone(c)+1) mod n — the only positions a signal at c may move
// to. Both layers of each position are candidates.
func (l *Layout) OutgoingNeighbors(c Coord) []Coord {
	return l.AppendOutgoingNeighbors(c, nil)
}

// IncomingNeighbors lists the grid positions adjacent to c whose clock
// zone is (zone(c)-1) mod n.
func (l *Layout) IncomingNeighbors(c Coord) []Coord {
	n := l.Scheme.NumZones
	want := (l.Zone(c) - 1 + n) % n
	var out []Coord
	for _, d := range neighborOffsets(l.Topo, c.Y) {
		x, y := c.X+d[0], c.Y+d[1]
		if x < 0 || y < 0 {
			continue
		}
		if l.Scheme.Zone(x, y) == want {
			out = append(out, Coord{X: x, Y: y, Z: 0}, Coord{X: x, Y: y, Z: 1})
		}
	}
	return out
}

// Clone returns a deep copy of the layout.
func (l *Layout) Clone() *Layout {
	c := New(l.Name, l.Topo, l.Scheme)
	c.Library = l.Library
	for coord, t := range l.tiles {
		cp := *t
		cp.Incoming = append([]Coord(nil), t.Incoming...)
		c.tiles[coord] = &cp
	}
	for coord, outs := range l.outgoing {
		c.outgoing[coord] = append([]Coord(nil), outs...)
	}
	return c
}

// Stats summarizes a layout.
type Stats struct {
	Name      string
	Width     int
	Height    int
	Area      int
	Gates     int // placed logic gates (incl. fanouts, excl. wires and I/O)
	Wires     int // routing wire segments
	Crossings int // positions where both layers are occupied
	PIs       int
	POs       int
}

// ComputeStats gathers Stats for the layout.
func (l *Layout) ComputeStats() Stats {
	s := Stats{Name: l.Name}
	s.Width, s.Height = l.BoundingBox()
	s.Area = s.Width * s.Height
	for c, t := range l.tiles {
		switch {
		case t.Fn == network.PI:
			s.PIs++
		case t.Fn == network.PO:
			s.POs++
		case t.IsWire():
			s.Wires++
			if c.Z == 1 {
				s.Crossings++
			}
		default:
			s.Gates++
		}
	}
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %dx%d=%d tiles, %d gates, %d wires, %d crossings, I/O=%d/%d",
		s.Name, s.Width, s.Height, s.Area, s.Gates, s.Wires, s.Crossings, s.PIs, s.POs)
}

// PITiles returns the coordinates of all PI tiles in deterministic order.
func (l *Layout) PITiles() []Coord {
	var out []Coord
	for _, c := range l.Coords() {
		if l.tiles[c].Fn == network.PI {
			out = append(out, c)
		}
	}
	return out
}

// POTiles returns the coordinates of all PO tiles in deterministic order.
func (l *Layout) POTiles() []Coord {
	var out []Coord
	for _, c := range l.Coords() {
		if l.tiles[c].Fn == network.PO {
			out = append(out, c)
		}
	}
	return out
}
