// Package verilog reads and writes the structural-Verilog subset used by
// the FCN benchmark suites (Trindade16, Fontes18, ISCAS85, EPFL as
// distributed by MNT Bench): a single module with scalar ports, wire
// declarations, continuous assignments over ~ & | ^ expressions, and
// gate-primitive instantiations (and/or/nand/nor/xor/xnor/not/buf).
package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // 1'b0 / 1'b1 / plain integers
	tokSymbol // single-char punctuation or operator
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func isIdentStart(r byte) bool {
	return r == '_' || r == '\\' || unicode.IsLetter(rune(r))
}

func isIdentPart(r byte) bool {
	return r == '_' || r == '$' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
}

// next scans the next token. Escaped identifiers (\name ) and indexed
// names (x[3]) are returned as single identifier tokens.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("line %d: unterminated block comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scanToken() (token, error) {
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\\': // escaped identifier: up to whitespace
		l.pos++
		for l.pos < len(l.src) && !isSpace(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start+1 : l.pos], line: l.line}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		// Fold an immediate [index] subscript into the identifier so that
		// bit-selects of declared vectors read as scalar names.
		if l.pos < len(l.src) && l.src[l.pos] == '[' {
			close := strings.IndexByte(l.src[l.pos:], ']')
			if close < 0 {
				return token{}, fmt.Errorf("line %d: unterminated bit-select after %q", l.line, text)
			}
			inner := l.src[l.pos+1 : l.pos+close]
			if isIndex(inner) {
				text += "[" + inner + "]"
				l.pos += close + 1
			}
		}
		return token{kind: tokIdent, text: text, line: l.line}, nil
	case unicode.IsDigit(rune(c)):
		for l.pos < len(l.src) && (isIdentPart(l.src[l.pos]) || l.src[l.pos] == '\'') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	default:
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isIndex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !unicode.IsDigit(rune(s[i])) {
			return false
		}
	}
	return true
}
