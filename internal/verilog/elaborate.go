package verilog

import (
	"fmt"

	"repro/internal/network"
)

// elaborate converts the parsed module into a logic network. Assignments
// may appear in any source order; signals are resolved recursively with
// combinational-loop detection.
func (m *module) elaborate() (*network.Network, error) {
	n := network.New(m.name)

	signal := make(map[string]network.ID)
	for _, in := range m.inputs {
		if m.defs[in] != nil {
			return nil, fmt.Errorf("verilog: input %q is also driven by an assignment", in)
		}
		signal[in] = n.AddPI(in)
	}

	building := make(map[string]bool)

	var build func(name string) (network.ID, error)
	var buildExpr func(e *expr) (network.ID, error)

	build = func(name string) (network.ID, error) {
		if id, ok := signal[name]; ok {
			return id, nil
		}
		if building[name] {
			return network.Invalid, fmt.Errorf("verilog: combinational loop through signal %q", name)
		}
		e, ok := m.defs[name]
		if !ok {
			return network.Invalid, fmt.Errorf("verilog: signal %q is read but never driven", name)
		}
		building[name] = true
		id, err := buildExpr(e)
		delete(building, name)
		if err != nil {
			return network.Invalid, err
		}
		signal[name] = id
		return id, nil
	}

	buildExpr = func(e *expr) (network.ID, error) {
		switch e.kind {
		case exprIdent:
			return build(e.name)
		case exprConst:
			return n.AddConst(e.val), nil
		case exprUnary:
			// Fuse ~(a OP b) into the native inverted gate so that NAND/NOR/
			// XNOR primitives and inverted assignments elaborate to one node.
			if inner := e.args[0]; inner.kind == exprBinary {
				a, err := buildExpr(inner.args[0])
				if err != nil {
					return network.Invalid, err
				}
				b, err := buildExpr(inner.args[1])
				if err != nil {
					return network.Invalid, err
				}
				switch inner.op {
				case '&':
					return n.AddNand(a, b), nil
				case '|':
					return n.AddNor(a, b), nil
				case '^':
					return n.AddXnor(a, b), nil
				}
			}
			a, err := buildExpr(e.args[0])
			if err != nil {
				return network.Invalid, err
			}
			return n.AddNot(a), nil
		case exprBinary:
			a, err := buildExpr(e.args[0])
			if err != nil {
				return network.Invalid, err
			}
			b, err := buildExpr(e.args[1])
			if err != nil {
				return network.Invalid, err
			}
			switch e.op {
			case '&':
				return n.AddAnd(a, b), nil
			case '|':
				return n.AddOr(a, b), nil
			case '^':
				return n.AddXor(a, b), nil
			}
			return network.Invalid, fmt.Errorf("verilog: line %d: unknown operator %q", e.line, e.op)
		case exprTernary:
			s, err := buildExpr(e.args[0])
			if err != nil {
				return network.Invalid, err
			}
			t, err := buildExpr(e.args[1])
			if err != nil {
				return network.Invalid, err
			}
			f, err := buildExpr(e.args[2])
			if err != nil {
				return network.Invalid, err
			}
			// s ? t : f  =  (s & t) | (~s & f)
			return n.AddOr(n.AddAnd(s, t), n.AddAnd(n.AddNot(s), f)), nil
		}
		return network.Invalid, fmt.Errorf("verilog: line %d: unhandled expression", e.line)
	}

	if len(m.outputs) == 0 {
		return nil, fmt.Errorf("verilog: module %q declares no outputs", m.name)
	}
	for _, out := range m.outputs {
		id, err := build(out)
		if err != nil {
			return nil, err
		}
		n.AddPO(id, out)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
