package verilog

import (
	"strings"
	"testing"

	"repro/internal/network"
)

const mux21Src = `
// 2:1 multiplexer
module mux21(a, b, s, f);
  input a, b, s;
  output f;
  wire w0, w1, w2;
  assign w0 = ~s;
  assign w1 = a & w0;
  assign w2 = b & s;
  assign f = w1 | w2;
endmodule
`

func TestParseMux21(t *testing.T) {
	n, err := ParseString(mux21Src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "mux21" {
		t.Errorf("name = %q", n.Name)
	}
	if n.NumPIs() != 3 || n.NumPOs() != 1 {
		t.Fatalf("I/O = %d/%d", n.NumPIs(), n.NumPOs())
	}
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		a, b, s := r&1 != 0, r&2 != 0, r&4 != 0
		want := a
		if s {
			want = b
		}
		if tt[r][0] != want {
			t.Errorf("row %d: got %v want %v", r, tt[r][0], want)
		}
	}
}

func TestParseOutOfOrderAssigns(t *testing.T) {
	src := `
module f(a, b, y);
  input a, b; output y;
  wire w;
  assign y = w ^ a;
  assign w = a & b;
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.Simulate([]bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false { // (1&1)^1 = 0
		t.Errorf("got %v", out[0])
	}
}

func TestParseGatePrimitives(t *testing.T) {
	src := `
module c17(in1, in2, in3, in4, in5, out1, out2);
  input in1, in2, in3, in4, in5;
  output out1, out2;
  wire w1, w2, w3, w4;
  nand g1(w1, in1, in3);
  nand g2(w2, in3, in4);
  nand g3(w3, in2, w2);
  nand g4(w4, w2, in5);
  nand g5(out1, w1, w3);
  nand g6(out2, w3, w4);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPIs() != 5 || n.NumPOs() != 2 {
		t.Fatalf("I/O = %d/%d, want 5/2", n.NumPIs(), n.NumPOs())
	}
	if g := n.NumLogicGates(); g != 6 {
		t.Errorf("gates = %d, want 6", g)
	}
}

func TestParseMultiInputPrimitive(t *testing.T) {
	src := `
module f(a, b, c, y);
  input a, b, c; output y;
  and (y, a, b, c);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		in := []bool{r&1 != 0, r&2 != 0, r&4 != 0}
		out, err := n.Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		want := in[0] && in[1] && in[2]
		if out[0] != want {
			t.Errorf("row %d: got %v want %v", r, out[0], want)
		}
	}
}

func TestParseTernary(t *testing.T) {
	src := `
module m(a, b, s, f);
  input a, b, s; output f;
  assign f = s ? b : a;
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		in := []bool{r&1 != 0, r&2 != 0, r&4 != 0}
		out, _ := n.Simulate(in)
		want := in[0]
		if in[2] {
			want = in[1]
		}
		if out[0] != want {
			t.Errorf("row %d mismatch", r)
		}
	}
}

func TestParseVectorPorts(t *testing.T) {
	src := `
module v(x, y);
  input [1:0] x;
  output y;
  assign y = x[1] & x[0];
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPIs() != 2 {
		t.Fatalf("PIs = %d, want 2", n.NumPIs())
	}
	// Declaration order is MSB first: x[1], x[0].
	if n.NameOf(n.PIs()[0]) != "x[1]" || n.NameOf(n.PIs()[1]) != "x[0]" {
		t.Errorf("PI names: %q, %q", n.NameOf(n.PIs()[0]), n.NameOf(n.PIs()[1]))
	}
	out, _ := n.Simulate([]bool{true, true})
	if !out[0] {
		t.Error("1&1 != 1")
	}
}

func TestParsePrecedence(t *testing.T) {
	// ~ binds tighter than &, & tighter than ^, ^ tighter than |.
	src := `
module p(a, b, c, f);
  input a, b, c; output f;
  assign f = a | b & c ^ ~a;
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		a, b, c := r&1 != 0, r&2 != 0, r&4 != 0
		want := a || ((b && c) != !a)
		out, _ := n.Simulate([]bool{a, b, c})
		if out[0] != want {
			t.Errorf("row %d: got %v want %v", r, out[0], want)
		}
	}
}

func TestParseConstants(t *testing.T) {
	src := `
module k(a, f, g);
  input a; output f, g;
  assign f = a & 1'b0;
  assign g = a | 1'b1;
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := n.Simulate([]bool{true})
	if out[0] != false || out[1] != true {
		t.Errorf("constants mis-evaluated: %v", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing endmodule": `module m(a, f); input a; output f; assign f = a;`,
		"undriven signal":   `module m(a, f); input a; output f; assign f = ghost; endmodule`,
		"driven twice":      `module m(a, f); input a; output f; assign f = a; assign f = ~a; endmodule`,
		"comb loop":         `module m(a, f); input a; output f; wire w; assign w = f; assign f = w; endmodule`,
		"no outputs":        `module m(a); input a; endmodule`,
		"driven input":      `module m(a, f); input a; output f; assign a = 1'b1; assign f = a; endmodule`,
		"wide constant":     `module m(a, f); input a; output f; assign f = a & 2'b10; endmodule`,
		"bad syntax":        `module m(a, f); input a; output f; assign f = ; endmodule`,
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	n, err := ParseString(mux21Src)
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	eq, err := network.Equivalent(n, back)
	if err != nil || !eq {
		t.Fatalf("round trip not equivalent (%v, %v):\n%s", eq, err, text)
	}
	if back.Name != "mux21" {
		t.Errorf("module name lost: %q", back.Name)
	}
}

func TestWriteRoundTripAllGates(t *testing.T) {
	n := network.New("allgates")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	n.AddPO(n.AddAnd(a, b), "o_and")
	n.AddPO(n.AddOr(a, b), "o_or")
	n.AddPO(n.AddNand(a, b), "o_nand")
	n.AddPO(n.AddNor(a, b), "o_nor")
	n.AddPO(n.AddXor(a, b), "o_xor")
	n.AddPO(n.AddXnor(a, b), "o_xnor")
	n.AddPO(n.AddNot(a), "o_not")
	n.AddPO(n.AddBuf(b), "o_buf")
	n.AddPO(n.AddMaj(a, b, c), "o_maj")
	n.AddPO(n.AddConst(true), "o_one")
	n.AddPO(n.AddConst(false), "o_zero")

	text, err := WriteString(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	eq, err := network.Equivalent(n, back)
	if err != nil || !eq {
		t.Fatalf("all-gates round trip failed (%v, %v)", eq, err)
	}
}

func TestWriteEscapedNames(t *testing.T) {
	n := network.New("esc")
	a := n.AddPI("x[0]")
	b := n.AddPI("x[1]")
	n.AddPO(n.AddAnd(a, b), "y[0]")
	text, err := WriteString(n)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "\\x[0] ") {
		t.Errorf("escaped identifier missing:\n%s", text)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if back.NameOf(back.PIs()[0]) != "x[0]" {
		t.Errorf("PI name lost: %q", back.NameOf(back.PIs()[0]))
	}
}

func TestWriteKeywordName(t *testing.T) {
	n := network.New("kw")
	a := n.AddPI("and") // pathological but legal via escaping
	n.AddPO(n.AddNot(a), "or")
	text, err := WriteString(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	eq, err := network.Equivalent(n, back)
	if err != nil || !eq {
		t.Fatal("keyword-named round trip failed")
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
module m(a, f); /* block
comment spanning lines */ input a; output f;
assign f = ~a; // trailing
endmodule`
	if _, err := ParseString(src); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutNodesWriteAsAliases(t *testing.T) {
	n := network.New("fan")
	a := n.AddPI("a")
	g1 := n.AddNot(a)
	n.AddPO(g1, "o1")
	n.AddPO(g1, "o2")
	n.SubstituteFanouts(2)
	text, err := WriteString(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	eq, err := network.Equivalent(n, back)
	if err != nil || !eq {
		t.Fatal("fanout round trip failed")
	}
}
