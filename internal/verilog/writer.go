package verilog

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/network"
)

// Write emits the network as a structural Verilog module using continuous
// assignments. Fanout and Buf nodes are emitted as plain aliases, so the
// output parses back into an equivalent (not structurally identical)
// network.
func Write(w io.Writer, n *network.Network) error {
	var b strings.Builder

	name := n.Name
	if name == "" {
		name = "top"
	}

	// Stable signal names: PIs and POs keep their names (escaped when
	// necessary), interior nodes become n<id>.
	sig := make(map[network.ID]string)
	used := make(map[string]bool)
	unique := func(base string) string {
		cand := base
		for i := 2; used[cand]; i++ {
			cand = fmt.Sprintf("%s_%d", base, i)
		}
		used[cand] = true
		return cand
	}
	for _, pi := range n.PIs() {
		nm := n.NameOf(pi)
		if nm == "" {
			nm = fmt.Sprintf("pi%d", pi)
		}
		sig[pi] = unique(nm)
	}
	poName := make(map[network.ID]string)
	for _, po := range n.POs() {
		nm := n.NameOf(po)
		if nm == "" {
			nm = fmt.Sprintf("po%d", po)
		}
		poName[po] = unique(nm)
	}

	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		if _, ok := sig[id]; ok {
			continue
		}
		if n.Gate(id).IsLogic() {
			sig[id] = unique(fmt.Sprintf("n%d", id))
		}
	}

	ports := make([]string, 0, n.NumPIs()+n.NumPOs())
	for _, pi := range n.PIs() {
		ports = append(ports, escape(sig[pi]))
	}
	for _, po := range n.POs() {
		ports = append(ports, escape(poName[po]))
	}

	fmt.Fprintf(&b, "// %s — written by mntbench (repro of MNT Bench, DATE'24)\n", name)
	fmt.Fprintf(&b, "module %s(%s);\n", escape(name), strings.Join(ports, ", "))
	writeDeclGroup(&b, "input", pisOf(n, sig))
	writeDeclGroup(&b, "output", posOf(n, poName))

	var wires []string
	for _, id := range order {
		if n.Gate(id).IsLogic() {
			wires = append(wires, escape(sig[id]))
		}
	}
	sort.Strings(wires)
	writeDeclGroup(&b, "wire", wires)

	for _, id := range order {
		nd := n.Node(id)
		if !nd.Fn.IsLogic() {
			continue
		}
		fmt.Fprintf(&b, "  assign %s = %s;\n", escape(sig[id]), rhs(nd, sig))
	}
	for _, po := range n.POs() {
		drv := n.Fanins(po)[0]
		fmt.Fprintf(&b, "  assign %s = %s;\n", escape(poName[po]), escape(sig[drv]))
	}
	b.WriteString("endmodule\n")
	_, werr := io.WriteString(w, b.String())
	return werr
}

// WriteString renders the network to a string.
func WriteString(n *network.Network) (string, error) {
	var b strings.Builder
	if err := Write(&b, n); err != nil {
		return "", err
	}
	return b.String(), nil
}

func pisOf(n *network.Network, sig map[network.ID]string) []string {
	out := make([]string, 0, n.NumPIs())
	for _, pi := range n.PIs() {
		out = append(out, escape(sig[pi]))
	}
	return out
}

func posOf(n *network.Network, poName map[network.ID]string) []string {
	out := make([]string, 0, n.NumPOs())
	for _, po := range n.POs() {
		out = append(out, escape(poName[po]))
	}
	return out
}

func writeDeclGroup(b *strings.Builder, kw string, names []string) {
	if len(names) == 0 {
		return
	}
	const perLine = 8
	for i := 0; i < len(names); i += perLine {
		end := i + perLine
		if end > len(names) {
			end = len(names)
		}
		fmt.Fprintf(b, "  %s %s;\n", kw, strings.Join(names[i:end], ", "))
	}
}

func rhs(nd network.Node, sig map[network.ID]string) string {
	in := func(i int) string { return escape(sig[nd.Fanins[i]]) }
	switch nd.Fn {
	case network.Const0:
		return "1'b0"
	case network.Const1:
		return "1'b1"
	case network.Buf, network.Fanout:
		return in(0)
	case network.Not:
		return "~" + in(0)
	case network.And:
		return in(0) + " & " + in(1)
	case network.Or:
		return in(0) + " | " + in(1)
	case network.Nand:
		return "~(" + in(0) + " & " + in(1) + ")"
	case network.Nor:
		return "~(" + in(0) + " | " + in(1) + ")"
	case network.Xor:
		return in(0) + " ^ " + in(1)
	case network.Xnor:
		return "~(" + in(0) + " ^ " + in(1) + ")"
	case network.Maj:
		a, b, c := in(0), in(1), in(2)
		return fmt.Sprintf("(%s & %s) | (%s & %s) | (%s & %s)", a, b, a, c, b, c)
	}
	return "1'b0"
}

// escape renders a signal name as a valid Verilog identifier, using
// escaped-identifier syntax when the name contains characters like [ ].
func escape(name string) string {
	plain := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			plain = false
			break
		}
	}
	if plain && len(name) > 0 && !(name[0] >= '0' && name[0] <= '9') {
		if !verilogKeywords[name] {
			return name
		}
	}
	return "\\" + name + " "
}

var verilogKeywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"wire": true, "assign": true, "and": true, "or": true, "nand": true,
	"nor": true, "xor": true, "xnor": true, "not": true, "buf": true,
}
