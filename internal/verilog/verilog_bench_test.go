package verilog

import (
	"testing"

	"repro/internal/bench"
)

func BenchmarkWriteParseC432(b *testing.B) {
	bm, err := bench.ByName("ISCAS85", "c432")
	if err != nil {
		b.Fatal(err)
	}
	n := bm.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, err := WriteString(n)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseString(text); err != nil {
			b.Fatal(err)
		}
	}
}
