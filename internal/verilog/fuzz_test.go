package verilog

import "testing"

// FuzzParseString checks the parser never panics and that everything it
// accepts survives a write/re-parse round trip.
func FuzzParseString(f *testing.F) {
	seeds := []string{
		mux21Src,
		`module m(a, f); input a; output f; assign f = ~a; endmodule`,
		`module m(a, b, f); input a, b; output f; nand (f, a, b); endmodule`,
		`module m(x, y); input [3:0] x; output y; assign y = x[0] ^ x[3]; endmodule`,
		`module m(a, f); input a; output f; assign f = a ? 1'b0 : 1'b1; endmodule`,
		`module`, `((((`, `module m(; endmodule`, "",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseString(src)
		if err != nil {
			return
		}
		text, werr := WriteString(n)
		if werr != nil {
			t.Fatalf("accepted network cannot be written: %v", werr)
		}
		if _, perr := ParseString(text); perr != nil {
			t.Fatalf("round trip failed: %v\n%s", perr, text)
		}
	})
}
