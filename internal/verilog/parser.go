package verilog

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/network"
)

// Parse reads a structural Verilog module from r and elaborates it into a
// logic network. Exactly one module is expected.
func Parse(r io.Reader) (*network.Network, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseString(string(src))
}

// ParseString is Parse over an in-memory source string.
func ParseString(src string) (*network.Network, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	mod, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	return mod.elaborate()
}

// expression AST

type exprKind uint8

const (
	exprIdent exprKind = iota
	exprConst
	exprUnary  // ~a
	exprBinary // a OP b with OP in & | ^
	exprTernary
)

type expr struct {
	kind exprKind
	name string // exprIdent
	val  bool   // exprConst
	op   byte   // exprBinary: '&' '|' '^'
	args []*expr
	line int
}

// module is the parsed, un-elaborated form.
type module struct {
	name    string
	ports   []string
	inputs  []string
	outputs []string
	wires   map[string]bool
	defs    map[string]*expr // signal -> driving expression
	defLine map[string]int
	inSet   map[string]bool
	outSet  map[string]bool
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("verilog: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	if p.tok.kind != tokSymbol || p.tok.text != s {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return p.errf("expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) parseModule() (*module, error) {
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected module name, found %s", p.tok)
	}
	m := &module{
		name:    p.tok.text,
		wires:   make(map[string]bool),
		defs:    make(map[string]*expr),
		defLine: make(map[string]int),
		inSet:   make(map[string]bool),
		outSet:  make(map[string]bool),
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokSymbol && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if p.tok.kind == tokSymbol && p.tok.text == ")" {
				break
			}
			// Tolerate ANSI-style "input a" inside the port list.
			if p.tok.kind == tokIdent && (p.tok.text == "input" || p.tok.text == "output" || p.tok.text == "wire") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			if p.tok.kind != tokIdent {
				return nil, p.errf("expected port name, found %s", p.tok)
			}
			m.ports = append(m.ports, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokSymbol && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}

	for {
		if p.tok.kind == tokEOF {
			return nil, p.errf("missing endmodule")
		}
		if p.tok.kind == tokIdent && p.tok.text == "endmodule" {
			break
		}
		if err := p.parseItem(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

var gatePrimitives = map[string]network.Gate{
	"and": network.And, "or": network.Or, "nand": network.Nand,
	"nor": network.Nor, "xor": network.Xor, "xnor": network.Xnor,
	"not": network.Not, "buf": network.Buf,
}

func (p *parser) parseItem(m *module) error {
	if p.tok.kind != tokIdent {
		return p.errf("unexpected %s", p.tok)
	}
	switch kw := p.tok.text; kw {
	case "input", "output", "wire":
		return p.parseDecl(m, kw)
	case "assign":
		return p.parseAssign(m)
	default:
		if g, ok := gatePrimitives[kw]; ok {
			return p.parseGateInst(m, kw, g)
		}
		return p.errf("unsupported construct %q", kw)
	}
}

// parseDecl handles "input [7:0] a, b;" style declarations, expanding
// vectors into indexed scalar names.
func (p *parser) parseDecl(m *module, kw string) error {
	if err := p.advance(); err != nil {
		return err
	}
	hi, lo, hasRange, err := p.parseOptionalRange()
	if err != nil {
		return err
	}
	for {
		if p.tok.kind != tokIdent {
			return p.errf("expected signal name, found %s", p.tok)
		}
		base := p.tok.text
		var names []string
		if hasRange {
			names = expandVector(base, hi, lo)
		} else {
			names = []string{base}
		}
		for _, name := range names {
			switch kw {
			case "input":
				if !m.inSet[name] {
					m.inSet[name] = true
					m.inputs = append(m.inputs, name)
				}
			case "output":
				if !m.outSet[name] {
					m.outSet[name] = true
					m.outputs = append(m.outputs, name)
				}
			case "wire":
				m.wires[name] = true
			}
		}
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokSymbol && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	return p.expectSymbol(";")
}

// expandVector lists base[hi]..base[lo] (or ascending when lo > hi) in
// MSB-to-LSB declaration order.
func expandVector(base string, hi, lo int) []string {
	var names []string
	if hi >= lo {
		for i := hi; i >= lo; i-- {
			names = append(names, fmt.Sprintf("%s[%d]", base, i))
		}
	} else {
		for i := hi; i <= lo; i++ {
			names = append(names, fmt.Sprintf("%s[%d]", base, i))
		}
	}
	return names
}

func (p *parser) parseOptionalRange() (hi, lo int, ok bool, err error) {
	if p.tok.kind != tokSymbol || p.tok.text != "[" {
		return 0, 0, false, nil
	}
	if err := p.advance(); err != nil {
		return 0, 0, false, err
	}
	hi, err = p.parseInt()
	if err != nil {
		return 0, 0, false, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return 0, 0, false, err
	}
	lo, err = p.parseInt()
	if err != nil {
		return 0, 0, false, err
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, 0, false, err
	}
	return hi, lo, true, nil
}

func (p *parser) parseInt() (int, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number, found %s", p.tok)
	}
	v := 0
	for i := 0; i < len(p.tok.text); i++ {
		c := p.tok.text[i]
		if c < '0' || c > '9' {
			return 0, p.errf("expected plain integer, found %s", p.tok)
		}
		v = v*10 + int(c-'0')
	}
	return v, p.advance()
}

func (p *parser) parseAssign(m *module) error {
	if err := p.advance(); err != nil { // consume "assign"
		return err
	}
	if p.tok.kind != tokIdent {
		return p.errf("expected assignment target, found %s", p.tok)
	}
	lhs := p.tok.text
	line := p.tok.line
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if _, dup := m.defs[lhs]; dup {
		return fmt.Errorf("verilog: line %d: signal %q driven twice (first at line %d)", line, lhs, m.defLine[lhs])
	}
	m.defs[lhs] = e
	m.defLine[lhs] = line
	return nil
}

// parseGateInst handles "and g1(out, a, b);" and anonymous "and (out,a,b);".
func (p *parser) parseGateInst(m *module, kw string, g network.Gate) error {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind == tokIdent { // optional instance name
		if err := p.advance(); err != nil {
			return err
		}
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	var pins []string
	for {
		if p.tok.kind != tokIdent {
			return p.errf("expected signal in %s instance, found %s", kw, p.tok)
		}
		pins = append(pins, p.tok.text)
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokSymbol && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if len(pins) < 2 {
		return fmt.Errorf("verilog: line %d: %s instance needs an output and at least one input", line, kw)
	}
	out, ins := pins[0], pins[1:]
	e, err := gateExpr(g, ins, line)
	if err != nil {
		return fmt.Errorf("verilog: line %d: %w", line, err)
	}
	if _, dup := m.defs[out]; dup {
		return fmt.Errorf("verilog: line %d: signal %q driven twice (first at line %d)", line, out, m.defLine[out])
	}
	m.defs[out] = e
	m.defLine[out] = line
	return nil
}

// gateExpr folds a multi-input primitive into a left-associated tree of
// two-input expressions (Verilog primitives accept arbitrary input counts).
func gateExpr(g network.Gate, ins []string, line int) (*expr, error) {
	ident := func(n string) *expr { return &expr{kind: exprIdent, name: n, line: line} }
	bin := func(op byte, a, b *expr) *expr {
		return &expr{kind: exprBinary, op: op, args: []*expr{a, b}, line: line}
	}
	neg := func(e *expr) *expr { return &expr{kind: exprUnary, args: []*expr{e}, line: line} }
	var op byte
	invert := false
	switch g {
	case network.Not:
		if len(ins) != 1 {
			return nil, fmt.Errorf("not takes exactly one input, got %d", len(ins))
		}
		return neg(ident(ins[0])), nil
	case network.Buf:
		if len(ins) != 1 {
			return nil, fmt.Errorf("buf takes exactly one input, got %d", len(ins))
		}
		return ident(ins[0]), nil
	case network.And:
		op = '&'
	case network.Nand:
		op, invert = '&', true
	case network.Or:
		op = '|'
	case network.Nor:
		op, invert = '|', true
	case network.Xor:
		op = '^'
	case network.Xnor:
		op, invert = '^', true
	default:
		return nil, fmt.Errorf("unsupported primitive %s", g)
	}
	if len(ins) < 2 {
		return nil, fmt.Errorf("%s takes at least two inputs", g)
	}
	e := ident(ins[0])
	for _, in := range ins[1:] {
		e = bin(op, e, ident(in))
	}
	if invert {
		e = neg(e)
	}
	return e, nil
}

// Expression parsing with Verilog precedence (low to high):
// ?: < | < ^ < & < ~ < primary.

func (p *parser) parseExpr() (*expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokSymbol && p.tok.text == "?" {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		thenE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exprTernary, args: []*expr{cond, thenE, elseE}, line: line}, nil
	}
	return cond, nil
}

func (p *parser) parseOr() (*expr, error) {
	e, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokSymbol && p.tok.text == "|" {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		e = &expr{kind: exprBinary, op: '|', args: []*expr{e, rhs}, line: line}
	}
	return e, nil
}

func (p *parser) parseXor() (*expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokSymbol && p.tok.text == "^" {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = &expr{kind: exprBinary, op: '^', args: []*expr{e, rhs}, line: line}
	}
	return e, nil
}

func (p *parser) parseAnd() (*expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokSymbol && p.tok.text == "&" {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = &expr{kind: exprBinary, op: '&', args: []*expr{e, rhs}, line: line}
	}
	return e, nil
}

func (p *parser) parseUnary() (*expr, error) {
	if p.tok.kind == tokSymbol && (p.tok.text == "~" || p.tok.text == "!") {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exprUnary, args: []*expr{inner}, line: line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*expr, error) {
	switch {
	case p.tok.kind == tokSymbol && p.tok.text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.kind == tokIdent:
		e := &expr{kind: exprIdent, name: p.tok.text, line: p.tok.line}
		return e, p.advance()
	case p.tok.kind == tokNumber:
		v, err := parseConst(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		e := &expr{kind: exprConst, val: v, line: p.tok.line}
		return e, p.advance()
	default:
		return nil, p.errf("expected expression, found %s", p.tok)
	}
}

func parseConst(text string) (bool, error) {
	switch strings.ToLower(text) {
	case "0", "1'b0", "1'h0", "1'd0":
		return false, nil
	case "1", "1'b1", "1'h1", "1'd1":
		return true, nil
	}
	return false, fmt.Errorf("unsupported constant %q (only single-bit constants)", text)
}
