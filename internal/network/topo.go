package network

// TopoOrder returns all live node IDs in a topological order (every node
// appears after all of its fanins). PIs and constants come first in
// creation order; the order among independent nodes is deterministic.
// It returns ErrCyclic if the graph contains a cycle, which can only
// happen after inconsistent ReplaceFanin calls. Every flow stage and
// simulation starts with it; BenchmarkTopoOrder1k tracks it per-node.
//
//perf:hot
func (n *Network) TopoOrder() ([]ID, error) {
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make([]uint8, len(n.nodes))
	order := make([]ID, 0, len(n.nodes))

	// Iterative DFS to survive deep networks without blowing the stack.
	type frame struct {
		id   ID
		next int
	}
	var stack []frame

	visit := func(root ID) error {
		if state[root] != unvisited {
			return nil
		}
		stack = append(stack[:0], frame{id: root})
		state[root] = onStack
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			fanins := n.nodes[f.id].Fanins
			if f.next < len(fanins) {
				child := fanins[f.next]
				f.next++
				switch state[child] {
				case unvisited:
					state[child] = onStack
					stack = append(stack, frame{id: child})
				case onStack:
					return ErrCyclic
				}
				continue
			}
			state[f.id] = done
			order = append(order, f.id)
			stack = stack[:len(stack)-1]
		}
		return nil
	}

	for id := range n.nodes {
		if n.nodes[id].Fn == None {
			state[id] = done
			continue
		}
		if err := visit(ID(id)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// MustTopoOrder is TopoOrder for networks known to be acyclic — anything
// built through the construction API without inconsistent ReplaceFanin
// calls. It panics on a cycle.
func (n *Network) MustTopoOrder() []ID {
	order, err := n.TopoOrder()
	if err != nil {
		panic(err)
	}
	return order
}

// Levels returns the logic level of every node slot: PIs and constants
// are level 0, every other node is 1 + max(level of fanins). POs share
// the level of their driver. Deleted slots report level 0.
func (n *Network) Levels() []int {
	order := n.MustTopoOrder()
	levels := make([]int, len(n.nodes))
	for _, id := range order {
		nd := n.nodes[id]
		if len(nd.Fanins) == 0 {
			continue
		}
		max := 0
		for _, f := range nd.Fanins {
			if levels[f] > max {
				max = levels[f]
			}
		}
		if nd.Fn == PO {
			levels[id] = max
		} else {
			levels[id] = max + 1
		}
	}
	return levels
}

// Depth returns the maximum logic level over all POs (the critical path
// length in gates). An empty network has depth 0.
func (n *Network) Depth() int {
	levels := n.Levels()
	d := 0
	for _, po := range n.pos {
		if levels[po] > d {
			d = levels[po]
		}
	}
	return d
}

// Cone returns the set of live node IDs in the transitive fanin cone of
// root, including root itself.
func (n *Network) Cone(root ID) map[ID]bool {
	cone := make(map[ID]bool)
	var stack []ID
	stack = append(stack, root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cone[id] {
			continue
		}
		cone[id] = true
		stack = append(stack, n.nodes[id].Fanins...)
	}
	return cone
}

// DanglingNodes returns live interior nodes that transitively drive no PO.
func (n *Network) DanglingNodes() []ID {
	reach := make([]bool, len(n.nodes))
	var stack []ID
	for _, po := range n.pos {
		stack = append(stack, po)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[id] {
			continue
		}
		reach[id] = true
		stack = append(stack, n.nodes[id].Fanins...)
	}
	var dangling []ID
	for id, nd := range n.nodes {
		if nd.Fn.IsLogic() && !reach[id] {
			dangling = append(dangling, ID(id))
		}
	}
	return dangling
}

// RemoveDangling deletes all interior nodes that drive no PO and returns
// how many nodes were removed.
func (n *Network) RemoveDangling() int {
	d := n.DanglingNodes()
	for _, id := range d {
		n.Delete(id)
	}
	return len(d)
}
