package network

import (
	"fmt"
	"testing"
)

// benchNetwork builds a layered DAG with the given gate count.
func benchNetwork(gates int) *Network {
	n := New(fmt.Sprintf("bench%d", gates))
	var sig []ID
	for i := 0; i < 16; i++ {
		sig = append(sig, n.AddPI(fmt.Sprintf("x%d", i)))
	}
	g := []Gate{And, Or, Xor, Nand}
	for i := 0; i < gates; i++ {
		a := sig[(i*7+3)%len(sig)]
		b := sig[(i*13+5)%len(sig)]
		sig = append(sig, n.AddGate(g[i%len(g)], a, b))
	}
	n.AddPO(sig[len(sig)-1], "f")
	n.AddPO(sig[len(sig)-2], "g")
	return n
}

func BenchmarkTopoOrder1k(b *testing.B) {
	n := benchNetwork(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate1k(b *testing.B) {
	n := benchNetwork(1000)
	in := make([]bool, n.NumPIs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Simulate(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstituteFanouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := benchNetwork(1000)
		b.StartTimer()
		n.SubstituteFanouts(2)
	}
}

func BenchmarkStrash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := benchNetwork(1000)
		b.StartTimer()
		n.Strash()
	}
}
