package network

import (
	"testing"
	"testing/quick"
)

func TestStrashMergesDuplicates(t *testing.T) {
	n := New("dup")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddAnd(a, b)
	g2 := n.AddAnd(a, b) // duplicate
	g3 := n.AddAnd(b, a) // commutative duplicate
	n.AddPO(n.AddXor(g1, g2), "f")
	n.AddPO(g3, "g")
	orig := n.Clone()
	removed := n.Strash()
	if removed < 2 {
		t.Fatalf("removed %d, want >= 2", removed)
	}
	count := 0
	for id := 0; id < n.Size(); id++ {
		if n.Gate(ID(id)) == And {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d AND nodes remain, want 1", count)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatalf("strash changed function: %v %v", eq, err)
	}
}

func TestStrashDoubleNegation(t *testing.T) {
	n := New("dn")
	a := n.AddPI("a")
	n.AddPO(n.AddNot(n.AddNot(a)), "f")
	orig := n.Clone()
	if removed := n.Strash(); removed == 0 {
		t.Fatal("double negation not collapsed")
	}
	if n.NumLogicGates() != 0 {
		t.Errorf("%d gates remain", n.NumLogicGates())
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatal("function changed")
	}
}

func TestStrashBypassesBuffers(t *testing.T) {
	n := New("buf")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddAnd(n.AddBuf(a), b)
	g2 := n.AddAnd(a, n.AddBuf(b))
	n.AddPO(n.AddOr(g1, g2), "f")
	n.Strash()
	count := 0
	for id := 0; id < n.Size(); id++ {
		if n.Gate(ID(id)) == And {
			count++
		}
	}
	if count != 1 {
		t.Errorf("buffered duplicates not merged: %d ANDs", count)
	}
}

func TestStrashIdempotent(t *testing.T) {
	n := New("x")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(n.AddAnd(a, b), n.AddAnd(b, a)), "f")
	n.Strash()
	if again := n.Strash(); again != 0 {
		t.Fatalf("second strash removed %d", again)
	}
}

func TestStrashMaj(t *testing.T) {
	n := New("maj")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	m1 := n.AddMaj(a, b, c)
	m2 := n.AddMaj(c, a, b)
	n.AddPO(n.AddXor(m1, m2), "f")
	orig := n.Clone()
	if removed := n.Strash(); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatal("function changed")
	}
}

func TestPropagateConstantsFullFold(t *testing.T) {
	n := New("k")
	a := n.AddPI("a")
	one := n.AddConst(true)
	zero := n.AddConst(false)
	// (a & 0) | 1  ->  1
	n.AddPO(n.AddOr(n.AddAnd(a, zero), one), "f")
	orig := n.Clone()
	if removed := n.PropagateConstants(); removed == 0 {
		t.Fatal("nothing folded")
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatal("function changed")
	}
	// Only the constant driver should remain.
	if g := n.NumLogicGates(); g > 1 {
		t.Errorf("%d gates remain", g)
	}
}

func TestPropagateConstantsPartial(t *testing.T) {
	cases := []struct {
		build func(n *Network, a, k ID) ID
		kVal  bool
	}{
		{func(n *Network, a, k ID) ID { return n.AddAnd(a, k) }, true},   // a&1 = a
		{func(n *Network, a, k ID) ID { return n.AddOr(a, k) }, false},   // a|0 = a
		{func(n *Network, a, k ID) ID { return n.AddXor(a, k) }, true},   // a^1 = ~a
		{func(n *Network, a, k ID) ID { return n.AddXnor(a, k) }, false}, // a xnor 0 = ~a
		{func(n *Network, a, k ID) ID { return n.AddNand(a, k) }, true},  // = ~a
		{func(n *Network, a, k ID) ID { return n.AddNor(a, k) }, false},  // = ~a
	}
	for i, c := range cases {
		n := New("p")
		a := n.AddPI("a")
		k := n.AddConst(c.kVal)
		n.AddPO(c.build(n, a, k), "f")
		orig := n.Clone()
		n.PropagateConstants()
		eq, err := Equivalent(orig, n)
		if err != nil || !eq {
			t.Errorf("case %d: function changed", i)
		}
	}
}

func TestPropagateConstantsMaj(t *testing.T) {
	n := New("m")
	a := n.AddPI("a")
	b := n.AddPI("b")
	one := n.AddConst(true)
	n.AddPO(n.AddMaj(a, b, one), "f") // = a | b
	orig := n.Clone()
	if removed := n.PropagateConstants(); removed == 0 {
		t.Fatal("MAJ with constant not folded")
	}
	for id := 0; id < n.Size(); id++ {
		if n.Gate(ID(id)) == Maj {
			t.Fatal("MAJ survived")
		}
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatal("function changed")
	}
}

func TestOptimizePreservesFunctionQuick(t *testing.T) {
	f := func(shape [8]uint8) bool {
		n := randomNetwork(shape[:])
		orig := n.Clone()
		n.Strash()
		n.PropagateConstants()
		if err := n.Validate(); err != nil {
			return false
		}
		eq, err := Equivalent(orig, n)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
