package network_test

// Differential property tests for the bit-parallel simulation path: the
// compiled word-level evaluator must agree lane-for-lane with a
// straightforward scalar reference evaluator (the pre-compilation
// Simulate algorithm: per-call topo order + Gate.Eval) on random
// networks from the conformance generator, including after every kind
// of structural mutation that must invalidate the compiled program.

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/network"
)

// refSimulate is an independent scalar reference implementation of
// network simulation, deliberately written like the original
// map-backed Simulate so the compiled evaluator is checked against a
// different algorithm, not against itself.
func refSimulate(t testing.TB, n *network.Network, inputs []bool) []bool {
	t.Helper()
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	values := make(map[network.ID]bool, n.Size())
	pis := n.PIs()
	piVal := make(map[network.ID]bool, len(pis))
	for i, pi := range pis {
		piVal[pi] = inputs[i]
	}
	for _, id := range order {
		nd := n.Node(id)
		switch nd.Fn {
		case network.PI:
			values[id] = piVal[id]
		default:
			in := make([]bool, len(nd.Fanins))
			for i, f := range nd.Fanins {
				in[i] = values[f]
			}
			values[id] = nd.Fn.Eval(in...)
		}
	}
	out := make([]bool, n.NumPOs())
	for i, po := range n.POs() {
		out[i] = values[po]
	}
	return out
}

// genCfg produces networks wide and deep enough to exercise every gate
// function, reconvergent fanout, and multi-word PI counts.
var genCfg = conformance.GenConfig{
	MinPIs: 2, MaxPIs: 8,
	MinPOs: 1, MaxPOs: 3,
	MinGates: 1, MaxGates: 40,
}

// wordLane extracts pattern lane k of a word set as a []bool vector.
func wordLane(words []uint64, k int) []bool {
	v := make([]bool, len(words))
	for i, w := range words {
		v[i] = w>>uint(k)&1 != 0
	}
	return v
}

// checkWordsAgainstScalar verifies all 64 lanes of one SimulateWords
// call against the scalar reference.
func checkWordsAgainstScalar(t *testing.T, n *network.Network, piWords []uint64) {
	t.Helper()
	got, err := n.SimulateWords(piWords)
	if err != nil {
		t.Fatalf("SimulateWords: %v", err)
	}
	if len(got) != n.NumPOs() {
		t.Fatalf("SimulateWords returned %d words, want %d", len(got), n.NumPOs())
	}
	for lane := 0; lane < 64; lane++ {
		want := refSimulate(t, n, wordLane(piWords, lane))
		for j := range want {
			if got[j]>>uint(lane)&1 != 0 != want[j] {
				t.Fatalf("network %q PO %d lane %d: word path %v, scalar reference %v\npiWords=%#x",
					n.Name, j, lane, !want[j], want[j], piWords)
			}
		}
	}
}

// testWords derives a deterministic pseudo-random PI word set.
func testWords(numPIs int, seed uint64) []uint64 {
	words := make([]uint64, numPIs)
	x := seed
	for i := range words {
		// splitmix64 step
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		words[i] = z ^ (z >> 31)
	}
	return words
}

func TestSimulateWordsMatchesScalarReference(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		n := conformance.Random(seed, genCfg).MustBuild("rand")
		checkWordsAgainstScalar(t, n, testWords(n.NumPIs(), seed*977))
	}
}

func TestSimulateMatchesScalarReference(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		n := conformance.Random(seed, genCfg).MustBuild("rand")
		vecs := network.RandomVectors(n.NumPIs(), 16, seed)
		for _, vec := range vecs {
			got, err := n.Simulate(vec)
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			want := refSimulate(t, n, vec)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("seed %d: Simulate PO %d = %v, reference %v", seed, j, got[j], want[j])
				}
			}
		}
	}
}

func TestTruthTableMatchesScalarReference(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		n := conformance.Random(seed, genCfg).MustBuild("rand")
		tt, err := n.TruthTable()
		if err != nil {
			t.Fatalf("TruthTable: %v", err)
		}
		rows := 1 << n.NumPIs()
		if len(tt) != rows {
			t.Fatalf("TruthTable has %d rows, want %d", len(tt), rows)
		}
		// Spot-check every row against the reference (networks are small
		// enough that full coverage stays cheap).
		inputs := make([]bool, n.NumPIs())
		for r := 0; r < rows; r++ {
			for i := range inputs {
				inputs[i] = r&(1<<i) != 0
			}
			want := refSimulate(t, n, inputs)
			for j := range want {
				if tt[r][j] != want[j] {
					t.Fatalf("seed %d row %d PO %d: truth table %v, reference %v", seed, r, j, tt[r][j], want[j])
				}
			}
		}
	}
}

// TestCompiledEvaluatorInvalidation mutates networks through every
// structural mutation path — public API and the in-place optimization
// passes — and checks the word path still matches the scalar reference
// afterwards (i.e. no stale compiled program survives).
func TestCompiledEvaluatorInvalidation(t *testing.T) {
	mutations := []struct {
		name string
		run  func(n *network.Network)
	}{
		{"AddGate", func(n *network.Network) {
			pis := n.PIs()
			g := n.AddAnd(pis[0], pis[1])
			n.ReplaceFanin(n.POs()[0], 0, g)
		}},
		{"ReplaceFanin", func(n *network.Network) {
			n.ReplaceFanin(n.POs()[0], 0, n.PIs()[0])
		}},
		{"Strash", func(n *network.Network) { n.Strash() }},
		{"PropagateConstants", func(n *network.Network) {
			c := n.AddConst(true)
			g := n.AddAnd(c, n.PIs()[0])
			n.ReplaceFanin(n.POs()[0], 0, g)
			n.PropagateConstants()
		}},
		{"SubstituteFanouts", func(n *network.Network) { n.SubstituteFanouts(2) }},
		{"Decompose", func(n *network.Network) {
			set := network.GateSet{network.And: true, network.Or: true, network.Not: true,
				network.Buf: true, network.Fanout: true, network.Const0: true, network.Const1: true}
			if err := n.Decompose(set); err != nil {
				t.Fatalf("Decompose: %v", err)
			}
		}},
		{"Balance", func(n *network.Network) { n.Balance(true) }},
	}
	for _, mut := range mutations {
		t.Run(mut.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 15; seed++ {
				n := conformance.Random(seed, genCfg).MustBuild("rand")
				// Force a compile before mutating so a stale program would
				// actually be observable.
				if _, err := n.SimulateWords(testWords(n.NumPIs(), 7)); err != nil {
					t.Fatalf("pre-mutation SimulateWords: %v", err)
				}
				mut.run(n)
				checkWordsAgainstScalar(t, n, testWords(n.NumPIs(), seed))
			}
		})
	}
}

// TestCloneSharesCompiledProgram pins that a clone simulates correctly
// both when the parent's program was already compiled (shared pointer)
// and after the clone diverges by mutation.
func TestCloneSharesCompiledProgram(t *testing.T) {
	n := conformance.Random(3, genCfg).MustBuild("rand")
	words := testWords(n.NumPIs(), 11)
	base, err := n.SimulateWords(words)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	got, err := c.SimulateWords(words)
	if err != nil {
		t.Fatal(err)
	}
	for j := range base {
		if got[j] != base[j] {
			t.Fatalf("clone PO %d word %#x, parent %#x", j, got[j], base[j])
		}
	}
	// Diverge the clone; the parent must keep its old function and the
	// clone must track its new one.
	c.ReplaceFanin(c.POs()[0], 0, c.PIs()[0])
	checkWordsAgainstScalar(t, c, words)
	checkWordsAgainstScalar(t, n, words)
}

func TestSimulateWordsInputCount(t *testing.T) {
	n := conformance.Random(5, genCfg).MustBuild("rand")
	if _, err := n.SimulateWords(make([]uint64, n.NumPIs()+1)); err == nil {
		t.Fatal("SimulateWords accepted a wrong-width word set")
	}
}

// FuzzSimulateWords cross-checks the word-level evaluator against the
// scalar reference on generator networks derived from the fuzzed seed.
func FuzzSimulateWords(f *testing.F) {
	for _, seed := range []uint64{1, 2, 3, 0xC0FFEE, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		n := conformance.Random(seed, genCfg).MustBuild("fuzz")
		words := testWords(n.NumPIs(), seed^0xD1B54A32D192ED03)
		got, err := n.SimulateWords(words)
		if err != nil {
			t.Fatalf("SimulateWords: %v", err)
		}
		for lane := 0; lane < 64; lane++ {
			want := refSimulate(t, n, wordLane(words, lane))
			for j := range want {
				if got[j]>>uint(lane)&1 != 0 != want[j] {
					t.Fatalf("seed %d PO %d lane %d: word path disagrees with scalar reference", seed, j, lane)
				}
			}
		}
	})
}
