package network

import "fmt"

// Simulate evaluates the network on one input pattern. inputs[i] is the
// value of the i-th PI in creation order. The result holds one value per
// PO in creation order. TruthTable and the equivalence checks call it
// 2^PI times per network; the BENCH simulation experiments measure it
// per-gate.
//
//perf:hot
func (n *Network) Simulate(inputs []bool) ([]bool, error) {
	if len(inputs) != len(n.pis) {
		return nil, fmt.Errorf("network %q: got %d input values, want %d", n.Name, len(inputs), len(n.pis))
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	values := make([]bool, len(n.nodes))
	piVal := make(map[ID]bool, len(n.pis))
	for i, pi := range n.pis {
		piVal[pi] = inputs[i]
	}
	var buf [3]bool
	for _, id := range order {
		nd := n.nodes[id]
		switch nd.Fn {
		case PI:
			values[id] = piVal[id]
		default:
			in := buf[:len(nd.Fanins)]
			for i, f := range nd.Fanins {
				in[i] = values[f]
			}
			values[id] = nd.Fn.Eval(in...)
		}
	}
	out := make([]bool, len(n.pos))
	for i, po := range n.pos {
		out[i] = values[po]
	}
	return out, nil
}

// MaxTruthTableInputs bounds exhaustive truth-table computation; networks
// with more PIs must be compared with SimulateVectors instead.
const MaxTruthTableInputs = 16

// TruthTable exhaustively simulates the network over all 2^NumPIs input
// patterns. Row r of the result (pattern where PI i carries bit i of r)
// holds one value per PO. It fails for networks with more than
// MaxTruthTableInputs inputs.
func (n *Network) TruthTable() ([][]bool, error) {
	k := len(n.pis)
	if k > MaxTruthTableInputs {
		return nil, fmt.Errorf("network %q: %d inputs exceed truth-table limit %d", n.Name, k, MaxTruthTableInputs)
	}
	rows := 1 << k
	tt := make([][]bool, rows)
	inputs := make([]bool, k)
	for r := 0; r < rows; r++ {
		for i := 0; i < k; i++ {
			inputs[i] = r&(1<<i) != 0
		}
		out, err := n.Simulate(inputs)
		if err != nil {
			return nil, err
		}
		tt[r] = out
	}
	return tt, nil
}

// lcg is a small deterministic pseudo-random generator so that vector
// simulation is reproducible without pulling in time-based seeding.
type lcg uint64

//perf:hot
func (l *lcg) next() uint64 {
	*l = lcg(uint64(*l)*6364136223846793005 + 1442695040888963407)
	return uint64(*l)
}

// RandomVectors returns count deterministic pseudo-random input patterns
// for a network with numPIs inputs, seeded by seed.
func RandomVectors(numPIs, count int, seed uint64) [][]bool {
	gen := lcg(seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	vecs := make([][]bool, count)
	for v := range vecs {
		vec := make([]bool, numPIs)
		var bits uint64
		for i := 0; i < numPIs; i++ {
			if i%64 == 0 {
				bits = gen.next()
			}
			vec[i] = bits&(1<<(uint(i)%64)) != 0
		}
		vecs[v] = vec
	}
	return vecs
}

// SimulateVectors runs the network over each input pattern and returns
// the PO values per pattern. It sits on the measured equivalence-check
// path for wide networks.
//
//perf:hot
func (n *Network) SimulateVectors(vectors [][]bool) ([][]bool, error) {
	out := make([][]bool, len(vectors))
	for i, v := range vectors {
		o, err := n.Simulate(v)
		if err != nil {
			return nil, err
		}
		out[i] = o
	}
	return out, nil
}

// EquivalenceVectors is the number of random patterns used by Equivalent
// for networks too wide for exhaustive truth tables.
const EquivalenceVectors = 256

// Equivalent checks functional equivalence of two networks with matching
// PI/PO counts. Networks with at most MaxTruthTableInputs inputs are
// compared exhaustively; wider ones are compared on EquivalenceVectors
// deterministic random patterns (a strong but incomplete check).
func Equivalent(a, b *Network) (bool, error) {
	if a.NumPIs() != b.NumPIs() {
		return false, fmt.Errorf("PI count mismatch: %d vs %d", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return false, fmt.Errorf("PO count mismatch: %d vs %d", a.NumPOs(), b.NumPOs())
	}
	var vectors [][]bool
	if a.NumPIs() <= MaxTruthTableInputs {
		rows := 1 << a.NumPIs()
		vectors = make([][]bool, rows)
		for r := 0; r < rows; r++ {
			vec := make([]bool, a.NumPIs())
			for i := range vec {
				vec[i] = r&(1<<i) != 0
			}
			vectors[r] = vec
		}
	} else {
		vectors = RandomVectors(a.NumPIs(), EquivalenceVectors, 0xC0FFEE)
	}
	oa, err := a.SimulateVectors(vectors)
	if err != nil {
		return false, err
	}
	ob, err := b.SimulateVectors(vectors)
	if err != nil {
		return false, err
	}
	for r := range oa {
		for c := range oa[r] {
			if oa[r][c] != ob[r][c] {
				return false, nil
			}
		}
	}
	return true, nil
}
