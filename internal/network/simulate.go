package network

import "fmt"

// Simulation is bit-parallel: the compiled evaluator (compile.go) runs
// gate operations on uint64 words carrying 64 input patterns each, so
// TruthTable, Equivalent, and SimulateVectors pay one gate-op per 64
// patterns. The []bool APIs below are thin wrappers over that path.

// canonWords are the canonical truth-table variable words: bit k (the
// k-th pattern lane of a 64-pattern block) of canonWords[i] is bit i of
// the pattern index k. PIs beyond the sixth toggle per block instead
// (all-ones iff bit i-6 of the block index is set).
var canonWords = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// SimulateWords evaluates the network on 64 input patterns at once.
// piWords[i] carries the values of the i-th PI: bit k is its value
// under pattern k. The result holds one word per PO in creation order,
// bit k being that PO's value under pattern k. Callers evaluating fewer
// than 64 patterns read only the lanes they filled; every lane is a
// well-defined evaluation of the corresponding PI bits.
//
//perf:hot
func (n *Network) SimulateWords(piWords []uint64) ([]uint64, error) {
	if len(piWords) != len(n.pis) {
		return nil, fmt.Errorf("network %q: got %d input words, want %d", n.Name, len(piWords), len(n.pis))
	}
	p, err := n.program()
	if err != nil {
		return nil, err
	}
	values := make([]uint64, p.slots)
	for i, slot := range p.pis {
		values[slot] = piWords[i]
	}
	p.run(values)
	out := make([]uint64, len(p.pos))
	for i, slot := range p.pos {
		out[i] = values[slot]
	}
	return out, nil
}

// Simulate evaluates the network on one input pattern. inputs[i] is the
// value of the i-th PI in creation order. The result holds one value per
// PO in creation order. It is a single-lane run of the compiled
// word-level evaluator: no topo re-derivation or PI map per call.
//
//perf:hot
func (n *Network) Simulate(inputs []bool) ([]bool, error) {
	if len(inputs) != len(n.pis) {
		return nil, fmt.Errorf("network %q: got %d input values, want %d", n.Name, len(inputs), len(n.pis))
	}
	p, err := n.program()
	if err != nil {
		return nil, err
	}
	values := make([]uint64, p.slots)
	for i, slot := range p.pis {
		if inputs[i] {
			values[slot] = 1
		}
	}
	p.run(values)
	out := make([]bool, len(p.pos))
	for i, slot := range p.pos {
		out[i] = values[slot]&1 != 0
	}
	return out, nil
}

// MaxTruthTableInputs bounds exhaustive truth-table computation; networks
// with more PIs must be compared with SimulateVectors instead.
const MaxTruthTableInputs = 16

// TruthTable exhaustively simulates the network over all 2^NumPIs input
// patterns. Row r of the result (pattern where PI i carries bit i of r)
// holds one value per PO. It fails for networks with more than
// MaxTruthTableInputs inputs. Patterns are evaluated 64 per pass using
// the canonical variable words.
func (n *Network) TruthTable() ([][]bool, error) {
	k := len(n.pis)
	if k > MaxTruthTableInputs {
		return nil, fmt.Errorf("network %q: %d inputs exceed truth-table limit %d", n.Name, k, MaxTruthTableInputs)
	}
	p, err := n.program()
	if err != nil {
		return nil, err
	}
	rows := 1 << k
	tt := make([][]bool, rows)
	values := make([]uint64, p.slots)
	for base := 0; base < rows; base += 64 {
		block := base >> 6
		for i, slot := range p.pis {
			values[slot] = truthWord(i, block)
		}
		p.run(values)
		m := min(64, rows-base)
		for lane := 0; lane < m; lane++ {
			row := make([]bool, len(p.pos))
			for j, slot := range p.pos {
				row[j] = values[slot]>>uint(lane)&1 != 0
			}
			tt[base+lane] = row
		}
	}
	return tt, nil
}

// truthWord returns the canonical word for PI i in the given 64-pattern
// block of an exhaustive sweep.
//
//perf:hot
func truthWord(i, block int) uint64 {
	if i < 6 {
		return canonWords[i]
	}
	if block>>(uint(i)-6)&1 != 0 {
		return ^uint64(0)
	}
	return 0
}

// lcg is a small deterministic pseudo-random generator so that vector
// simulation is reproducible without pulling in time-based seeding.
type lcg uint64

//perf:hot
func (l *lcg) next() uint64 {
	*l = lcg(uint64(*l)*6364136223846793005 + 1442695040888963407)
	return uint64(*l)
}

// RandomVectors returns count deterministic pseudo-random input patterns
// for a network with numPIs inputs, seeded by seed.
func RandomVectors(numPIs, count int, seed uint64) [][]bool {
	gen := lcg(seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	vecs := make([][]bool, count)
	for v := range vecs {
		vec := make([]bool, numPIs)
		var bits uint64
		for i := 0; i < numPIs; i++ {
			if i%64 == 0 {
				bits = gen.next()
			}
			vec[i] = bits&(1<<(uint(i)%64)) != 0
		}
		vecs[v] = vec
	}
	return vecs
}

// SimulateVectors runs the network over each input pattern and returns
// the PO values per pattern. It sits on the measured equivalence-check
// path for wide networks; patterns are packed 64 per word internally.
//
//perf:hot
func (n *Network) SimulateVectors(vectors [][]bool) ([][]bool, error) {
	for _, v := range vectors {
		if len(v) != len(n.pis) {
			return nil, fmt.Errorf("network %q: got %d input values, want %d", n.Name, len(v), len(n.pis))
		}
	}
	p, err := n.program()
	if err != nil {
		return nil, err
	}
	out := make([][]bool, len(vectors))
	values := make([]uint64, p.slots)
	for base := 0; base < len(vectors); base += 64 {
		m := min(64, len(vectors)-base)
		for i, slot := range p.pis {
			var w uint64
			for lane := 0; lane < m; lane++ {
				if vectors[base+lane][i] {
					w |= 1 << uint(lane)
				}
			}
			values[slot] = w
		}
		p.run(values)
		for lane := 0; lane < m; lane++ {
			row := make([]bool, len(p.pos))
			for j, slot := range p.pos {
				row[j] = values[slot]>>uint(lane)&1 != 0
			}
			out[base+lane] = row
		}
	}
	return out, nil
}

// EquivalenceVectors is the number of random patterns used by Equivalent
// for networks too wide for exhaustive truth tables.
const EquivalenceVectors = 256

// Equivalent checks functional equivalence of two networks with matching
// PI/PO counts. Networks with at most MaxTruthTableInputs inputs are
// compared exhaustively; wider ones are compared on EquivalenceVectors
// deterministic random patterns (a strong but incomplete check). Both
// networks are evaluated bit-parallel and compared 64 patterns per word;
// lanes beyond the pattern count are masked out of the comparison so the
// verdict matches a pattern-by-pattern check exactly.
func Equivalent(a, b *Network) (bool, error) {
	if a.NumPIs() != b.NumPIs() {
		return false, fmt.Errorf("PI count mismatch: %d vs %d", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return false, fmt.Errorf("PO count mismatch: %d vs %d", a.NumPOs(), b.NumPOs())
	}
	pa, err := a.program()
	if err != nil {
		return false, err
	}
	pb, err := b.program()
	if err != nil {
		return false, err
	}
	va := make([]uint64, pa.slots)
	vb := make([]uint64, pb.slots)
	k := a.NumPIs()
	if k <= MaxTruthTableInputs {
		rows := 1 << k
		for base := 0; base < rows; base += 64 {
			block := base >> 6
			for i := range pa.pis {
				w := truthWord(i, block)
				va[pa.pis[i]] = w
				vb[pb.pis[i]] = w
			}
			pa.run(va)
			pb.run(vb)
			mask := wordMask(min(64, rows-base))
			for j := range pa.pos {
				if (va[pa.pos[j]]^vb[pb.pos[j]])&mask != 0 {
					return false, nil
				}
			}
		}
		return true, nil
	}
	vectors := RandomVectors(k, EquivalenceVectors, 0xC0FFEE)
	for base := 0; base < len(vectors); base += 64 {
		m := min(64, len(vectors)-base)
		for i := 0; i < k; i++ {
			var w uint64
			for lane := 0; lane < m; lane++ {
				if vectors[base+lane][i] {
					w |= 1 << uint(lane)
				}
			}
			va[pa.pis[i]] = w
			vb[pb.pis[i]] = w
		}
		pa.run(va)
		pb.run(vb)
		mask := wordMask(m)
		for j := range pa.pos {
			if (va[pa.pos[j]]^vb[pb.pos[j]])&mask != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}
