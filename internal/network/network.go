// Package network provides a technology-independent gate-level logic
// network for field-coupled nanocomputing (FCN) design flows.
//
// A Network is a directed acyclic graph of logic nodes. Primary inputs
// (PIs) are sources, primary outputs (POs) are sinks referencing a driver
// node, and every interior node computes a Boolean function of its fanins.
// Networks are the input to the physical design algorithms in
// internal/physical and are produced by the Verilog reader in
// internal/verilog and by the benchmark generators in internal/bench.
package network

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Gate enumerates the node functions a Network may contain.
type Gate uint8

// Node function codes. Fanout is an explicit signal-duplication node used
// by FCN flows where a logic gate may drive only a single successor.
const (
	None Gate = iota // unused / deleted node
	PI               // primary input
	PO               // primary output (one fanin: its driver)
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Maj // three-input majority
	Fanout
)

var gateNames = map[Gate]string{
	None: "NONE", PI: "PI", PO: "PO", Const0: "CONST0", Const1: "CONST1",
	Buf: "BUF", Not: "NOT", And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Maj: "MAJ", Fanout: "FANOUT",
}

// String returns the canonical upper-case name of the gate function.
func (g Gate) String() string {
	if s, ok := gateNames[g]; ok {
		return s
	}
	return fmt.Sprintf("GATE(%d)", uint8(g))
}

// GateFromString parses a canonical gate name as produced by Gate.String.
// The scan is over the fixed gate-code order, not map iteration order, so
// parsing is deterministic even if gate names were ever aliased.
func GateFromString(s string) (Gate, error) {
	for g := None; g <= Fanout; g++ {
		if gateNames[g] == s {
			return g, nil
		}
	}
	return None, fmt.Errorf("network: unknown gate name %q", s)
}

// Arity returns the number of fanins a gate of this function requires, or
// -1 if the function is variadic (none currently are).
func (g Gate) Arity() int {
	switch g {
	case PI, Const0, Const1:
		return 0
	case PO, Buf, Not, Fanout:
		return 1
	case And, Or, Nand, Nor, Xor, Xnor:
		return 2
	case Maj:
		return 3
	}
	return 0
}

// IsLogic reports whether the gate computes a (possibly trivial) Boolean
// function, i.e. is neither a PI, PO, nor a deleted node.
func (g Gate) IsLogic() bool {
	switch g {
	case None, PI, PO:
		return false
	}
	return true
}

// Eval computes the gate function over the given input values. It panics
// if the number of inputs does not match the gate arity; structural
// validity is the caller's responsibility (see Network.Validate).
func (g Gate) Eval(in ...bool) bool {
	g.mustArity(len(in))
	switch g {
	case Const0:
		return false
	case Const1:
		return true
	case PO, Buf, Fanout:
		return in[0]
	case Not:
		return !in[0]
	case And:
		return in[0] && in[1]
	case Or:
		return in[0] || in[1]
	case Nand:
		return !(in[0] && in[1])
	case Nor:
		return !(in[0] || in[1])
	case Xor:
		return in[0] != in[1]
	case Xnor:
		return in[0] == in[1]
	case Maj:
		n := 0
		for _, b := range in {
			if b {
				n++
			}
		}
		return n >= 2
	}
	//lint:ignore panicban unreachable backstop: the switch above is exhaustive over evaluable gates
	panic(fmt.Sprintf("network: gate %s cannot be evaluated", g))
}

// mustArity asserts that a gate receives exactly its arity in inputs;
// Eval's documented contract is to panic on misuse.
func (g Gate) mustArity(got int) {
	if got != g.Arity() {
		panic(fmt.Sprintf("network: %s expects %d inputs, got %d", g, g.Arity(), got))
	}
}

// ID identifies a node within a Network. IDs are dense, stable, and never
// reused; deleted nodes keep their slot with function None.
type ID int32

// Invalid is the zero-value node ID; it never names a live node.
const Invalid ID = -1

// Node is a single vertex of the network graph.
type Node struct {
	Fn     Gate
	Fanins []ID
	// Name is the signal name for PIs and POs and an optional debug name
	// for interior nodes.
	Name string
}

// Network is a mutable gate-level logic network.
//
// The zero value is an empty, usable network. Networks must not be
// copied by value (the compiled-evaluator cache embeds an
// atomic.Pointer); use Clone.
type Network struct {
	// Name identifies the function the network implements (e.g. "mux21").
	Name string

	nodes []Node
	pis   []ID
	pos   []ID

	// prog caches the compiled evaluator (see compile.go). It is safe
	// for concurrent readers; every structural mutation resets it via
	// invalidate.
	prog atomic.Pointer[evalProgram]
}

// New returns an empty network with the given function name.
func New(name string) *Network {
	return &Network{Name: name}
}

func (n *Network) add(nd Node) ID {
	id := ID(len(n.nodes))
	n.nodes = append(n.nodes, nd)
	n.invalidate()
	return id
}

// mustValidFanins asserts that fanins match the gate arity and reference
// in-range non-PO nodes; the construction API panics on such programming
// errors rather than returning them.
func (n *Network) mustValidFanins(fn Gate, fanins []ID) {
	if len(fanins) != fn.Arity() {
		panic(fmt.Sprintf("network: %s expects %d fanins, got %d", fn, fn.Arity(), len(fanins)))
	}
	for _, f := range fanins {
		if f < 0 || int(f) >= len(n.nodes) {
			panic(fmt.Sprintf("network: fanin %d out of range", f))
		}
		n.mustDrivable(f)
	}
}

// mustDrivable rejects POs as signal sources: a PO is a sink.
func (n *Network) mustDrivable(id ID) {
	if n.nodes[id].Fn == PO {
		panic("network: a PO cannot drive another node")
	}
}

// AddPI creates a new primary input with the given signal name.
func (n *Network) AddPI(name string) ID {
	id := n.add(Node{Fn: PI, Name: name})
	n.pis = append(n.pis, id)
	return id
}

// AddPO creates a new primary output named name and driven by src.
func (n *Network) AddPO(src ID, name string) ID {
	n.mustValidFanins(PO, []ID{src})
	id := n.add(Node{Fn: PO, Fanins: []ID{src}, Name: name})
	n.pos = append(n.pos, id)
	return id
}

// AddGate creates an interior node computing fn over the given fanins.
func (n *Network) AddGate(fn Gate, fanins ...ID) ID {
	mustLogicGate(fn)
	n.mustValidFanins(fn, fanins)
	return n.add(Node{Fn: fn, Fanins: append([]ID(nil), fanins...)})
}

// Convenience constructors for the common gate functions.

// AddAnd creates an AND node.
func (n *Network) AddAnd(a, b ID) ID { return n.AddGate(And, a, b) }

// AddOr creates an OR node.
func (n *Network) AddOr(a, b ID) ID { return n.AddGate(Or, a, b) }

// AddNand creates a NAND node.
func (n *Network) AddNand(a, b ID) ID { return n.AddGate(Nand, a, b) }

// AddNor creates a NOR node.
func (n *Network) AddNor(a, b ID) ID { return n.AddGate(Nor, a, b) }

// AddXor creates an XOR node.
func (n *Network) AddXor(a, b ID) ID { return n.AddGate(Xor, a, b) }

// AddXnor creates an XNOR node.
func (n *Network) AddXnor(a, b ID) ID { return n.AddGate(Xnor, a, b) }

// AddNot creates an inverter.
func (n *Network) AddNot(a ID) ID { return n.AddGate(Not, a) }

// AddBuf creates a buffer.
func (n *Network) AddBuf(a ID) ID { return n.AddGate(Buf, a) }

// AddMaj creates a three-input majority node.
func (n *Network) AddMaj(a, b, c ID) ID { return n.AddGate(Maj, a, b, c) }

// AddConst creates a constant node of the given value.
func (n *Network) AddConst(v bool) ID {
	if v {
		return n.AddGate(Const1)
	}
	return n.AddGate(Const0)
}

// AddFanout creates an explicit fanout (signal duplication) node.
func (n *Network) AddFanout(a ID) ID { return n.AddGate(Fanout, a) }

// Node returns the node stored under id. The returned value is a copy;
// mutate nodes only through ReplaceFanin and the Add* methods.
func (n *Network) Node(id ID) Node {
	return n.nodes[id]
}

// Gate returns the function of node id.
func (n *Network) Gate(id ID) Gate { return n.nodes[id].Fn }

// Fanins returns the fanin IDs of node id. The slice must not be mutated.
func (n *Network) Fanins(id ID) []ID { return n.nodes[id].Fanins }

// NameOf returns the signal name of node id ("" for unnamed nodes).
func (n *Network) NameOf(id ID) string { return n.nodes[id].Name }

// SetName assigns a debug/signal name to node id.
func (n *Network) SetName(id ID, name string) { n.nodes[id].Name = name }

// ReplaceFanin redirects the idx-th fanin of node id to point at newSrc.
func (n *Network) ReplaceFanin(id ID, idx int, newSrc ID) {
	n.mustDrivable(newSrc)
	n.nodes[id].Fanins[idx] = newSrc
	n.invalidate()
}

// mustLogicGate restricts AddGate to interior logic functions; PIs and
// POs have dedicated constructors.
func mustLogicGate(fn Gate) {
	if !fn.IsLogic() {
		panic(fmt.Sprintf("network: AddGate cannot create %s nodes", fn))
	}
}

// mustDeletable rejects deleting PIs or POs, which would silently change
// the network interface.
func (n *Network) mustDeletable(id ID) {
	switch n.nodes[id].Fn {
	case PI, PO:
		panic("network: cannot delete a PI or PO")
	}
}

// Delete marks node id as deleted. Deleting PIs or POs is not allowed.
func (n *Network) Delete(id ID) {
	n.mustDeletable(id)
	n.nodes[id] = Node{Fn: None}
	n.invalidate()
}

// Size returns the number of node slots ever allocated, including deleted
// ones; iterate with IsAlive to skip the latter.
func (n *Network) Size() int { return len(n.nodes) }

// IsAlive reports whether id names a live (non-deleted) node.
func (n *Network) IsAlive(id ID) bool {
	return id >= 0 && int(id) < len(n.nodes) && n.nodes[id].Fn != None
}

// PIs returns the primary input IDs in creation order. Do not mutate.
func (n *Network) PIs() []ID { return n.pis }

// POs returns the primary output IDs in creation order. Do not mutate.
func (n *Network) POs() []ID { return n.pos }

// NumPIs returns the number of primary inputs.
func (n *Network) NumPIs() int { return len(n.pis) }

// NumPOs returns the number of primary outputs.
func (n *Network) NumPOs() int { return len(n.pos) }

// NumGates returns the number of live interior logic nodes (everything
// except PIs, POs, and deleted slots).
func (n *Network) NumGates() int {
	c := 0
	for _, nd := range n.nodes {
		if nd.Fn.IsLogic() {
			c++
		}
	}
	return c
}

// NumLogicGates returns the number of live interior nodes excluding
// buffers and fanouts, matching the "N" node counts reported by MNT Bench.
func (n *Network) NumLogicGates() int {
	c := 0
	for _, nd := range n.nodes {
		if nd.Fn.IsLogic() && nd.Fn != Buf && nd.Fn != Fanout {
			c++
		}
	}
	return c
}

// FanoutCounts returns, for every node slot, the number of live nodes
// (including POs) that reference it as a fanin.
func (n *Network) FanoutCounts() []int {
	counts := make([]int, len(n.nodes))
	for _, nd := range n.nodes {
		if nd.Fn == None {
			continue
		}
		for _, f := range nd.Fanins {
			counts[f]++
		}
	}
	return counts
}

// FanoutLists returns, for every node slot, the IDs of live nodes
// (including POs) that reference it as a fanin, in ID order.
func (n *Network) FanoutLists() [][]ID {
	lists := make([][]ID, len(n.nodes))
	for id, nd := range n.nodes {
		if nd.Fn == None {
			continue
		}
		for _, f := range nd.Fanins {
			lists[f] = append(lists[f], ID(id))
		}
	}
	return lists
}

// Clone returns a deep copy of the network. The compiled-evaluator
// cache, if built, is shared with the clone (it is immutable and the
// clone is structurally identical until its first mutation, which
// invalidates the clone's reference only).
func (n *Network) Clone() *Network {
	return n.CloneInto(nil)
}

// CloneInto is Clone with the node and fanin slices carved from a,
// so a caller that clones repeatedly (the campaign scheduler) can
// recycle one arena instead of re-allocating per clone. A nil arena
// falls back to fresh allocations. The clone's slices come from the
// arena but behave like owned memory: appends beyond their length
// reallocate out of the slab (full-slice-expression capping), so
// post-clone mutation never stomps a neighboring clone.
func (n *Network) CloneInto(a *Arena) *Network {
	c := &Network{
		Name:  n.Name,
		nodes: a.nodes(len(n.nodes)),
		pis:   a.ids(n.pis),
		pos:   a.ids(n.pos),
	}
	for i := range n.nodes {
		nd := &n.nodes[i]
		c.nodes[i] = Node{Fn: nd.Fn, Name: nd.Name, Fanins: a.ids(nd.Fanins)}
	}
	n.shareProgram(c)
	return c
}

// Validate checks structural invariants: fanin arities match gate
// functions, fanins reference live non-PO nodes, the graph is acyclic
// (guaranteed by construction but re-checked for robustness), and every
// PO has exactly one live driver.
func (n *Network) Validate() error {
	for id, nd := range n.nodes {
		if nd.Fn == None {
			continue
		}
		if len(nd.Fanins) != nd.Fn.Arity() {
			return fmt.Errorf("network %q: node %d (%s) has %d fanins, want %d",
				n.Name, id, nd.Fn, len(nd.Fanins), nd.Fn.Arity())
		}
		for _, f := range nd.Fanins {
			if f < 0 || int(f) >= len(n.nodes) {
				return fmt.Errorf("network %q: node %d references out-of-range fanin %d", n.Name, id, f)
			}
			if n.nodes[f].Fn == None {
				return fmt.Errorf("network %q: node %d references deleted fanin %d", n.Name, id, f)
			}
			if n.nodes[f].Fn == PO {
				return fmt.Errorf("network %q: node %d driven by PO %d", n.Name, id, f)
			}
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return fmt.Errorf("network %q: %w", n.Name, err)
	}
	return nil
}

// ErrCyclic is returned by TopoOrder when the network contains a cycle.
var ErrCyclic = errors.New("network contains a cycle")
