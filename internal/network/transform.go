package network

import "fmt"

// SubstituteFanouts rewrites the network so that no PI or logic node
// (other than Fanout nodes themselves) drives more than one successor:
// every multi-fanout signal is duplicated through a tree of explicit
// Fanout nodes, each of degree at most maxDegree (typically 2 in FCN,
// where a fanout tile splits a signal into two).
//
// The transformation preserves functionality; POs count as successors.
func (n *Network) SubstituteFanouts(maxDegree int) {
	mustFanoutDegree(maxDegree)
	// Consumer fanins are rewritten in place below, bypassing
	// ReplaceFanin; drop the compiled evaluator up front.
	n.invalidate()
	// Snapshot fanout lists before mutation; new nodes appended during the
	// rewrite start with correct (single) fanout by construction.
	lists := n.FanoutLists()
	limit := len(n.nodes)
	for src := 0; src < limit; src++ {
		nd := n.nodes[src]
		if nd.Fn == None || nd.Fn == PO {
			continue
		}
		consumers := lists[src]
		if nd.Fn == Fanout {
			if len(consumers) <= maxDegree {
				continue
			}
		} else if len(consumers) <= 1 {
			continue
		}
		// Build a balanced fanout tree over the consumers. leaves[i] is the
		// signal to feed consumer i.
		leaves := n.buildFanoutTree(ID(src), nd.Fn, len(consumers), maxDegree)
		for i, consumer := range consumers {
			fanins := n.nodes[consumer].Fanins
			for idx, f := range fanins {
				if f == ID(src) {
					n.nodes[consumer].Fanins[idx] = leaves[i]
					break // replace one reference per consumer entry
				}
			}
		}
	}
}

// buildFanoutTree creates a tree of Fanout nodes rooted at src producing
// `count` leaf signals. If src is itself a Fanout node it is reused as the
// tree root (keeping up to maxDegree of the leaves directly on it).
func (n *Network) buildFanoutTree(src ID, srcFn Gate, count, maxDegree int) []ID {
	// Each fanout node yields maxDegree outputs. We grow a frontier of
	// available output slots until it covers all consumers.
	frontier := []ID{src}
	if srcFn != Fanout {
		// A non-fanout source may drive exactly one successor: the tree root.
		root := n.AddFanout(src)
		frontier = []ID{root}
	}
	// Available slots: each frontier node can feed maxDegree consumers,
	// but feeding a consumer and feeding a deeper fanout node both use
	// slots. Expand breadth-first until enough leaf slots exist.
	type slot struct{ node ID }
	for {
		capacity := len(frontier) * maxDegree
		if capacity >= count {
			break
		}
		// Split the first frontier node into maxDegree new fanout nodes.
		head := frontier[0]
		frontier = frontier[1:]
		for i := 0; i < maxDegree; i++ {
			frontier = append(frontier, n.AddFanout(head))
		}
	}
	leaves := make([]ID, 0, count)
	for _, f := range frontier {
		for i := 0; i < maxDegree && len(leaves) < count; i++ {
			leaves = append(leaves, f)
		}
	}
	return leaves
}

// MaxFanout returns the largest number of successors any PI or logic node
// has (Fanout nodes report their successor count too).
func (n *Network) MaxFanout() int {
	max := 0
	for id, cnt := range n.FanoutCounts() {
		if n.nodes[id].Fn == None || n.nodes[id].Fn == PO {
			continue
		}
		if cnt > max {
			max = cnt
		}
	}
	return max
}

// GateSet describes which gate functions a technology (gate library) can
// realize natively. Decompose rewrites unsupported functions in terms of
// supported ones.
type GateSet map[Gate]bool

// Supports reports whether g is natively available.
func (s GateSet) Supports(g Gate) bool { return s[g] }

// Decompose rewrites every node whose function is not in the supported
// set into an equivalent sub-network of supported gates. Buf, Fanout, PI
// and PO are always kept. It returns an error if a required decomposition
// cannot be expressed with the supported set (the set must contain at
// least {And, Or, Not} or {Nand} or {Nor}).
func (n *Network) Decompose(supported GateSet) error {
	// Fanins are re-pointed in place below, bypassing ReplaceFanin.
	n.invalidate()
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	b, err := newDecomposer(n, supported)
	if err != nil {
		return err
	}
	replacement := make(map[ID]ID)
	redirect := func(id ID) ID {
		if r, ok := replacement[id]; ok {
			return r
		}
		return id
	}
	for _, id := range order {
		nd := n.nodes[id]
		// First re-point fanins at any replacements created so far.
		for idx, f := range nd.Fanins {
			if r := redirect(f); r != f {
				n.nodes[id].Fanins[idx] = r
			}
		}
		switch nd.Fn {
		case PI, PO, Buf, Fanout, None:
			continue
		}
		if supported.Supports(nd.Fn) {
			continue
		}
		repl, derr := b.rebuild(nd.Fn, n.nodes[id].Fanins)
		if derr != nil {
			return fmt.Errorf("network %q: node %d: %w", n.Name, id, derr)
		}
		replacement[id] = repl
		n.Delete(id)
	}
	// Nodes created by the decomposer reference original fanins directly,
	// and all original nodes were re-pointed in topological order, so the
	// graph is consistent. Clean up anything orphaned by the rewrite.
	n.RemoveDangling()
	return nil
}

// decomposer builds supported-gate implementations of unsupported
// functions. It targets one of three complete bases and fixes up
// single-gate gaps (e.g. base {And,Or,Not} lacking Xor).
type decomposer struct {
	n   *Network
	set GateSet
}

func newDecomposer(n *Network, set GateSet) (*decomposer, error) {
	d := &decomposer{n: n, set: set}
	if !d.complete() {
		return nil, fmt.Errorf("gate set %v is not functionally complete for decomposition", setNames(set))
	}
	return d, nil
}

// setNames lists the supported gate names in gate-code order. Iterating
// the map directly would leak map iteration order into Decompose error
// messages, making otherwise-identical runs diverge byte-for-byte.
func setNames(s GateSet) []string {
	var out []string
	for g := None; g <= Fanout; g++ {
		if s[g] {
			out = append(out, g.String())
		}
	}
	return out
}

func (d *decomposer) complete() bool {
	s := d.set
	if s.Supports(Nand) || s.Supports(Nor) {
		return true
	}
	if (s.Supports(And) || s.Supports(Or) || s.Supports(Maj)) && s.Supports(Not) {
		return true
	}
	return false
}

// Primitive emitters: produce a supported realization of NOT/AND/OR.

func (d *decomposer) not(a ID) ID {
	switch {
	case d.set.Supports(Not):
		return d.n.AddNot(a)
	case d.set.Supports(Nand):
		return d.n.AddNand(a, a)
	case d.set.Supports(Nor):
		return d.n.AddNor(a, a)
	}
	//lint:ignore panicban unreachable: newDecomposer rejects incomplete gate sets up front
	panic("decomposer: no inverter in a complete gate set")
}

func (d *decomposer) and(a, b ID) ID {
	switch {
	case d.set.Supports(And):
		return d.n.AddAnd(a, b)
	case d.set.Supports(Nand):
		return d.not(d.n.AddNand(a, b))
	case d.set.Supports(Nor):
		return d.n.AddNor(d.not(a), d.not(b))
	case d.set.Supports(Or):
		return d.not(d.n.AddOr(d.not(a), d.not(b)))
	case d.set.Supports(Maj):
		zero := d.constant(false)
		return d.n.AddMaj(a, b, zero)
	}
	//lint:ignore panicban unreachable: newDecomposer rejects incomplete gate sets up front
	panic("decomposer: cannot build AND")
}

func (d *decomposer) or(a, b ID) ID {
	switch {
	case d.set.Supports(Or):
		return d.n.AddOr(a, b)
	case d.set.Supports(Nor):
		return d.not(d.n.AddNor(a, b))
	case d.set.Supports(Nand):
		return d.n.AddNand(d.not(a), d.not(b))
	case d.set.Supports(And):
		return d.not(d.n.AddAnd(d.not(a), d.not(b)))
	case d.set.Supports(Maj):
		one := d.constant(true)
		return d.n.AddMaj(a, b, one)
	}
	//lint:ignore panicban unreachable: newDecomposer rejects incomplete gate sets up front
	panic("decomposer: cannot build OR")
}

// mustFanoutDegree validates the degree parameter of SubstituteFanouts;
// a degree below 2 cannot split a signal and is a programming error.
func mustFanoutDegree(d int) {
	if d < 2 {
		panic(fmt.Sprintf("network: fanout degree %d must be >= 2", d))
	}
}

// constant emits a constant node; constants are always structurally
// representable regardless of the gate set.
func (d *decomposer) constant(v bool) ID {
	return d.n.AddConst(v)
}

// rebuild returns a supported-gate implementation of fn(fanins...).
func (d *decomposer) rebuild(fn Gate, fanins []ID) (ID, error) {
	switch fn {
	case Not:
		return d.not(fanins[0]), nil
	case And:
		return d.and(fanins[0], fanins[1]), nil
	case Or:
		return d.or(fanins[0], fanins[1]), nil
	case Nand:
		return d.not(d.and(fanins[0], fanins[1])), nil
	case Nor:
		return d.not(d.or(fanins[0], fanins[1])), nil
	case Xor:
		// a^b = (a|b) & ~(a&b)
		a, b := fanins[0], fanins[1]
		return d.and(d.or(a, b), d.not(d.and(a, b))), nil
	case Xnor:
		a, b := fanins[0], fanins[1]
		return d.or(d.and(a, b), d.not(d.or(a, b))), nil
	case Maj:
		// <abc> = ab | ac | bc  =  ab | c(a|b)
		a, b, c := fanins[0], fanins[1], fanins[2]
		return d.or(d.and(a, b), d.and(c, d.or(a, b))), nil
	case Const0, Const1:
		return d.constant(fn == Const1), nil
	case Buf, Fanout:
		return fanins[0], nil
	}
	return Invalid, fmt.Errorf("cannot decompose %s", fn)
}

// Stats summarizes the structural properties of a network.
type Stats struct {
	Name      string
	PIs       int
	POs       int
	Gates     int // live interior nodes incl. Buf/Fanout
	LogicOnly int // live interior nodes excl. Buf/Fanout
	Depth     int
	MaxFanout int
}

// ComputeStats gathers Stats for the network.
func (n *Network) ComputeStats() Stats {
	return Stats{
		Name:      n.Name,
		PIs:       n.NumPIs(),
		POs:       n.NumPOs(),
		Gates:     n.NumGates(),
		LogicOnly: n.NumLogicGates(),
		Depth:     n.Depth(),
		MaxFanout: n.MaxFanout(),
	}
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: I/O=%d/%d gates=%d (logic %d) depth=%d maxFanout=%d",
		s.Name, s.PIs, s.POs, s.Gates, s.LogicOnly, s.Depth, s.MaxFanout)
}
