package network

import (
	"testing"
	"testing/quick"
)

// skewedNet: f = (a & b) ^ c — the c path is two levels shorter.
func skewedNet() *Network {
	n := New("skewed")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	g1 := n.AddAnd(a, b)
	g2 := n.AddOr(g1, a)
	n.AddPO(n.AddXor(g2, c), "f")
	return n
}

func TestBalanceInsertsBuffers(t *testing.T) {
	n := skewedNet()
	if n.IsBalanced(false) {
		t.Fatal("skewed network reported balanced")
	}
	orig := n.Clone()
	inserted := n.Balance(false)
	if inserted == 0 {
		t.Fatal("no buffers inserted")
	}
	if !n.IsBalanced(false) {
		t.Fatal("network not balanced after Balance")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatalf("balancing changed function: %v %v", eq, err)
	}
}

func TestBalanceAlignsOutputs(t *testing.T) {
	n := New("two-depth")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddAnd(a, b), "shallow")
	n.AddPO(n.AddNot(n.AddNot(n.AddOr(a, b))), "deep")
	n.Balance(true)
	if !n.IsBalanced(true) {
		t.Fatal("outputs not aligned")
	}
}

func TestBalanceIdempotent(t *testing.T) {
	n := skewedNet()
	n.Balance(true)
	if again := n.Balance(true); again != 0 {
		t.Fatalf("second Balance inserted %d buffers", again)
	}
}

func TestBalanceAlreadyBalanced(t *testing.T) {
	n := New("flat")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddAnd(a, b), "f")
	if got := n.Balance(false); got != 0 {
		t.Fatalf("inserted %d buffers into a balanced network", got)
	}
}

func TestBalancePreservesFunctionQuick(t *testing.T) {
	f := func(shape [6]uint8) bool {
		n := randomNetwork(shape[:])
		orig := n.Clone()
		n.Balance(true)
		if !n.IsBalanced(true) {
			return false
		}
		if err := n.Validate(); err != nil {
			return false
		}
		eq, err := Equivalent(orig, n)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
