package network

import "sort"

// Strash performs structural hashing: interior nodes with the same
// function and the same (commutatively normalized) fanins are merged
// into one, and double inverters collapse. Buffers are treated as
// transparent during hashing. Returns the number of nodes removed.
//
// Strash is the standard de-duplication pass run before technology
// preparation; the Trindade16/Fontes18 reconstructions and Verilog
// imports can contain duplicate subexpressions that would otherwise be
// placed twice.
func (n *Network) Strash() int {
	// Fanins are rewritten in place below, bypassing ReplaceFanin; drop
	// the compiled evaluator up front.
	n.invalidate()
	order := n.MustTopoOrder()

	type key struct {
		fn Gate
		a  ID
		b  ID
		c  ID
	}
	canon := make(map[key]ID)
	replacement := make(map[ID]ID)
	resolve := func(id ID) ID {
		for {
			r, ok := replacement[id]
			if !ok {
				return id
			}
			id = r
		}
	}
	removed := 0

	commutative := func(g Gate) bool {
		switch g {
		case And, Or, Nand, Nor, Xor, Xnor, Maj:
			return true
		}
		return false
	}

	for _, id := range order {
		nd := n.nodes[id]
		if nd.Fn == None {
			continue
		}
		// Re-point fanins at canonical representatives (and through
		// buffers).
		fanins := n.nodes[id].Fanins
		for i, f := range fanins {
			f = resolve(f)
			for n.nodes[f].Fn == Buf {
				f = resolve(n.nodes[f].Fanins[0])
			}
			fanins[i] = f
		}
		if !nd.Fn.IsLogic() || nd.Fn == Buf || nd.Fn == Fanout {
			continue
		}
		// Double negation: NOT(NOT(x)) = x.
		if nd.Fn == Not {
			inner := fanins[0]
			if n.nodes[inner].Fn == Not {
				replacement[id] = resolve(n.nodes[inner].Fanins[0])
				n.Delete(id)
				removed++
				continue
			}
		}
		k := key{fn: nd.Fn, a: fanins[0]}
		if len(fanins) > 1 {
			k.b = fanins[1]
		} else {
			k.b = Invalid
		}
		if len(fanins) > 2 {
			k.c = fanins[2]
		} else {
			k.c = Invalid
		}
		if commutative(nd.Fn) {
			ids := []ID{k.a, k.b}
			if nd.Fn == Maj {
				ids = append(ids, k.c)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			k.a, k.b = ids[0], ids[1]
			if nd.Fn == Maj {
				k.c = ids[2]
			}
		}
		if rep, ok := canon[k]; ok {
			replacement[id] = rep
			n.Delete(id)
			removed++
			continue
		}
		canon[k] = id
	}
	// POs may still reference replaced nodes.
	for _, po := range n.pos {
		f := resolve(n.nodes[po].Fanins[0])
		for n.nodes[f].Fn == Buf {
			f = resolve(n.nodes[f].Fanins[0])
		}
		n.nodes[po].Fanins[0] = f
	}
	n.RemoveDangling()
	return removed
}

// PropagateConstants simplifies gates with constant fanins (AND with 0,
// OR with 1, XOR with constants, MAJ with a constant arm, inverted
// constants) until a fixpoint, returning the number of nodes eliminated.
func (n *Network) PropagateConstants() int {
	removed := 0
	for {
		changed := n.propagateConstantsOnce()
		if changed == 0 {
			break
		}
		removed += changed
	}
	n.RemoveDangling()
	return removed
}

func (n *Network) propagateConstantsOnce() int {
	// Direct fanin writes below bypass ReplaceFanin.
	n.invalidate()
	order := n.MustTopoOrder()
	// constVal[id] holds the known constant value of a node, if any.
	constVal := make(map[ID]bool)
	replacement := make(map[ID]ID)
	resolve := func(id ID) ID {
		for {
			r, ok := replacement[id]
			if !ok {
				return id
			}
			id = r
		}
	}
	changed := 0

	for _, id := range order {
		nd := n.nodes[id]
		if nd.Fn == None {
			continue
		}
		for i, f := range n.nodes[id].Fanins {
			n.nodes[id].Fanins[i] = resolve(f)
		}
		fanins := n.nodes[id].Fanins
		switch nd.Fn {
		case Const0:
			constVal[id] = false
			continue
		case Const1:
			constVal[id] = true
			continue
		case PI, PO, None, Fanout:
			continue
		}

		known := make([]bool, len(fanins))
		vals := make([]bool, len(fanins))
		allKnown := len(fanins) > 0
		for i, f := range fanins {
			v, ok := constVal[f]
			known[i] = ok
			vals[i] = v
			allKnown = allKnown && ok
		}
		if allKnown {
			// Fold the whole gate into a constant.
			v := nd.Fn.Eval(vals...)
			rep := n.AddConst(v)
			constVal[rep] = v
			replacement[id] = rep
			n.Delete(id)
			changed++
			continue
		}
		// Partial folds for two-input gates with one known side.
		if len(fanins) == 2 && (known[0] != known[1]) {
			ci, xi := 0, 1
			if known[1] {
				ci, xi = 1, 0
			}
			c := vals[ci]
			x := fanins[xi]
			var rep ID = Invalid
			neg := false
			switch nd.Fn {
			case And:
				if c {
					rep = x
				} else {
					rep = n.AddConst(false)
					constVal[rep] = false
				}
			case Or:
				if c {
					rep = n.AddConst(true)
					constVal[rep] = true
				} else {
					rep = x
				}
			case Nand:
				if c {
					rep, neg = x, true
				} else {
					rep = n.AddConst(true)
					constVal[rep] = true
				}
			case Nor:
				if c {
					rep = n.AddConst(false)
					constVal[rep] = false
				} else {
					rep, neg = x, true
				}
			case Xor:
				if c {
					rep, neg = x, true
				} else {
					rep = x
				}
			case Xnor:
				if c {
					rep = x
				} else {
					rep, neg = x, true
				}
			}
			if rep != Invalid {
				if neg {
					rep = n.AddNot(rep)
				}
				replacement[id] = rep
				n.Delete(id)
				changed++
				continue
			}
		}
		// MAJ with one known arm degenerates to AND/OR of the others.
		if nd.Fn == Maj {
			for i := 0; i < 3; i++ {
				if !known[i] {
					continue
				}
				o1, o2 := fanins[(i+1)%3], fanins[(i+2)%3]
				var rep ID
				if vals[i] {
					rep = n.AddOr(o1, o2)
				} else {
					rep = n.AddAnd(o1, o2)
				}
				replacement[id] = rep
				n.Delete(id)
				changed++
				break
			}
		}
	}
	// Fix POs.
	for _, po := range n.pos {
		n.nodes[po].Fanins[0] = resolve(n.nodes[po].Fanins[0])
	}
	return changed
}
