package network

import (
	"fmt"
	"strings"
	"testing"
)

// mixedGateNetwork builds a network exercising every decomposable gate
// function plus heavy reconvergent fanout, the shape where map-iteration
// nondeterminism would surface if any transform ranged over a map.
func mixedGateNetwork() *Network {
	n := New("determinism")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	d := n.AddPI("d")
	x := n.AddXor(a, b)
	y := n.AddXnor(b, c)
	m := n.AddMaj(x, y, d)
	na := n.AddNand(a, m)
	no := n.AddNor(y, d)
	n.AddPO(n.AddOr(na, no), "f0")
	n.AddPO(n.AddAnd(m, x), "f1")
	n.AddPO(n.AddNot(m), "f2")
	return n
}

// pipelineFingerprint runs the full library-preparation pipeline (clone,
// decompose to an AND/OR/NOT basis, substitute fanouts) and renders a
// canonical fingerprint: the topo-order gate/fanin sequence plus the
// exhaustive truth table. Any order leak anywhere in the pipeline changes
// the fingerprint.
func pipelineFingerprint(t *testing.T, src *Network) string {
	t.Helper()
	w := src.Clone()
	if err := w.Decompose(GateSet{Buf: true, Not: true, And: true, Or: true, Fanout: true}); err != nil {
		t.Fatalf("decompose: %v", err)
	}
	w.SubstituteFanouts(2)
	var sb strings.Builder
	for _, id := range w.MustTopoOrder() {
		nd := w.Node(id)
		fmt.Fprintf(&sb, "%d:%s%v;", id, nd.Fn, nd.Fanins)
	}
	tt, err := w.TruthTable()
	if err != nil {
		t.Fatalf("truth table: %v", err)
	}
	for _, row := range tt {
		for _, v := range row {
			if v {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// TestPipelineDeterministicRepeatedRuns pins that the clone + prepare +
// simulate pipeline is byte-stable across repeated runs in one process:
// truth-table vector layout and node numbering may not depend on map
// iteration order anywhere along the way. The conformance selftest's
// clone-then-rerun metamorphic check relies on this.
func TestPipelineDeterministicRepeatedRuns(t *testing.T) {
	src := mixedGateNetwork()
	want := pipelineFingerprint(t, src)
	for i := 1; i < 20; i++ {
		if got := pipelineFingerprint(t, src); got != want {
			t.Fatalf("run %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestDecomposeErrorMessageStable pins that the functionally-incomplete
// error renders the offending gate set in a fixed (gate-code) order
// rather than map iteration order.
func TestDecomposeErrorMessageStable(t *testing.T) {
	set := GateSet{Xor: true, Buf: true, Fanout: true, Const1: true}
	n := mixedGateNetwork()
	first := ""
	for i := 0; i < 50; i++ {
		err := n.Clone().Decompose(set)
		if err == nil {
			t.Fatal("expected decomposition to an incomplete gate set to fail")
		}
		if i == 0 {
			first = err.Error()
			continue
		}
		if err.Error() != first {
			t.Fatalf("error message unstable across runs:\n got %q\nwant %q", err.Error(), first)
		}
	}
	want := "[CONST1 BUF XOR FANOUT]"
	if !strings.Contains(first, want) {
		t.Fatalf("error %q does not list gates in gate-code order %s", first, want)
	}
}

// TestGateFromStringRoundTrip pins the parser over the whole gate
// catalogue; the scan order is the gate-code order, not map order.
func TestGateFromStringRoundTrip(t *testing.T) {
	for g := None; g <= Fanout; g++ {
		got, err := GateFromString(g.String())
		if err != nil {
			t.Fatalf("GateFromString(%s): %v", g, err)
		}
		if got != g {
			t.Fatalf("GateFromString(%s) = %s", g, got)
		}
	}
	if _, err := GateFromString("BOGUS"); err == nil {
		t.Fatal("expected an error for an unknown gate name")
	}
}
