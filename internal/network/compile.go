package network

// This file is the compiled-evaluator core behind Simulate,
// SimulateWords, SimulateVectors, TruthTable, and Equivalent: the
// network's topological order and fanin references are flattened once
// into a dense instruction list (evalProgram) that evaluates 64 input
// patterns per gate operation on uint64 words. The program is cached on
// the Network and invalidated by every structural mutation, so repeated
// simulation — exhaustive truth tables, equivalence checks, the
// conformance oracle — stops re-deriving TopoOrder and rebuilding
// per-call maps.

// evalOp is one compiled gate evaluation: write fn(values[a], values[b],
// values[c]) into values[dst]. Unused operand slots are 0 and ignored by
// the gate function.
type evalOp struct {
	fn      Gate
	dst     int32
	a, b, c int32
}

// evalProgram is the compiled form of a network: gate operations in
// topological order plus the value slots of the PIs and of the PO
// drivers. A program is immutable once built and may be shared between
// a network and its clones.
type evalProgram struct {
	ops []evalOp
	// pis[i] is the value slot of the i-th PI; pos[i] is the value slot
	// of the i-th PO's driver (POs are transparent, so no op is emitted
	// for them).
	pis []int32
	pos []int32
	// slots is the required length of a values scratch slice (one slot
	// per node ever allocated, deleted ones included).
	slots int
}

// program returns the cached compiled evaluator, building it on first
// use. Concurrent callers may race to build; the winners' programs are
// structurally identical, so the last store wins harmlessly. It fails
// only when the network contains a cycle.
func (n *Network) program() (*evalProgram, error) {
	if p := n.prog.Load(); p != nil {
		return p, nil
	}
	p, err := n.compile()
	if err != nil {
		return nil, err
	}
	n.prog.Store(p)
	return p, nil
}

// invalidate drops the cached evaluator after a structural mutation.
// Every mutation path — the Add* constructors via add, Delete,
// ReplaceFanin, and the in-place rewrites in optimize.go, transform.go,
// and balance.go — must reach this before the next simulation.
func (n *Network) invalidate() { n.prog.Store((*evalProgram)(nil)) }

// shareProgram hands an already-built program to a clone: the clone has
// identical structure, so recompiling would produce the same bytes.
func (n *Network) shareProgram(c *Network) {
	if p := n.prog.Load(); p != nil {
		c.prog.Store(p)
	}
}

// compile flattens the network into an evalProgram.
func (n *Network) compile() (*evalProgram, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := &evalProgram{slots: len(n.nodes)}
	p.ops = make([]evalOp, 0, len(order))
	for _, id := range order {
		nd := &n.nodes[id]
		switch nd.Fn {
		case PI, PO, None:
			continue
		}
		op := evalOp{fn: nd.Fn, dst: int32(id)}
		switch len(nd.Fanins) {
		case 3:
			op.c = int32(nd.Fanins[2])
			fallthrough
		case 2:
			op.b = int32(nd.Fanins[1])
			fallthrough
		case 1:
			op.a = int32(nd.Fanins[0])
		}
		p.ops = append(p.ops, op)
	}
	p.pis = make([]int32, len(n.pis))
	for i, pi := range n.pis {
		p.pis[i] = int32(pi)
	}
	p.pos = make([]int32, len(n.pos))
	for i, po := range n.pos {
		p.pos[i] = int32(n.nodes[po].Fanins[0])
	}
	return p, nil
}

// run evaluates the program over 64 packed input patterns: the caller
// writes one uint64 per PI into values (bit k of values[pis[i]] is the
// value of PI i under pattern k) and reads the PO words from the pos
// slots afterwards. Bits beyond the caller's pattern count hold garbage
// (inverting gates set them); callers must mask.
//
//perf:hot
func (p *evalProgram) run(values []uint64) {
	for i := range p.ops {
		op := &p.ops[i]
		var v uint64
		switch op.fn {
		case Const0:
			v = 0
		case Const1:
			v = ^uint64(0)
		case Buf, Fanout:
			v = values[op.a]
		case Not:
			v = ^values[op.a]
		case And:
			v = values[op.a] & values[op.b]
		case Or:
			v = values[op.a] | values[op.b]
		case Nand:
			v = ^(values[op.a] & values[op.b])
		case Nor:
			v = ^(values[op.a] | values[op.b])
		case Xor:
			v = values[op.a] ^ values[op.b]
		case Xnor:
			v = ^(values[op.a] ^ values[op.b])
		case Maj:
			a, b, c := values[op.a], values[op.b], values[op.c]
			v = (a & b) | (a & c) | (b & c)
		}
		values[op.dst] = v
	}
}

// wordMask returns a mask selecting the low count bits of a word
// (count in 1..64).
func wordMask(count int) uint64 {
	if count >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(count)) - 1
}
