package network_test

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/network"
)

// netEqual compares two networks structurally.
func netEqual(t *testing.T, a, b *network.Network) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("size %d vs %d", a.Size(), b.Size())
	}
	for id := network.ID(0); int(id) < a.Size(); id++ {
		na, nb := a.Node(id), b.Node(id)
		if na.Fn != nb.Fn || na.Name != nb.Name || len(na.Fanins) != len(nb.Fanins) {
			t.Fatalf("node %d differs: %+v vs %+v", id, na, nb)
		}
		for i := range na.Fanins {
			if na.Fanins[i] != nb.Fanins[i] {
				t.Fatalf("node %d fanin %d differs: %d vs %d", id, i, na.Fanins[i], nb.Fanins[i])
			}
		}
	}
}

func TestCloneIntoMatchesClone(t *testing.T) {
	a := network.NewArena()
	for seed := uint64(1); seed <= 20; seed++ {
		n := conformance.Random(seed, genCfg).MustBuild("rand")
		netEqual(t, n.Clone(), n.CloneInto(a))
		a.Reset()
	}
}

// TestArenaCloneIsolation pins the full-slice-expression guarantee:
// mutating (and growing) one arena clone must never be observable
// through a sibling clone carved from the same slabs, nor through the
// original.
func TestArenaCloneIsolation(t *testing.T) {
	n := conformance.Random(7, genCfg).MustBuild("rand")
	a := network.NewArena()
	c1 := n.CloneInto(a)
	c2 := n.CloneInto(a)
	pristine := n.Clone()

	// Grow c1 aggressively: new gates, fanout substitution, decompose.
	g := c1.AddAnd(c1.PIs()[0], c1.PIs()[1])
	c1.ReplaceFanin(c1.POs()[0], 0, g)
	c1.SubstituteFanouts(2)
	if err := c1.Validate(); err != nil {
		t.Fatalf("mutated arena clone invalid: %v", err)
	}

	netEqual(t, pristine, c2)
	netEqual(t, pristine, n)
	checkWordsAgainstScalar(t, c1, testWords(c1.NumPIs(), 3))
}

// TestArenaResetReuse pins that Reset actually rewinds: after a reset,
// re-cloning the same network reuses the slab (observable as equal
// backing-array identity is an implementation detail, so the test
// instead checks correctness over many cycles, which would corrupt
// loudly if offsets were wrong).
func TestArenaResetReuse(t *testing.T) {
	a := network.NewArena()
	for cycle := 0; cycle < 50; cycle++ {
		seed := uint64(cycle%5 + 1)
		n := conformance.Random(seed, genCfg).MustBuild("rand")
		c := n.CloneInto(a)
		netEqual(t, n, c)
		if err := c.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		checkWordsAgainstScalar(t, c, testWords(c.NumPIs(), uint64(cycle)))
		a.Reset()
	}
}

func TestNilArenaClones(t *testing.T) {
	n := conformance.Random(9, genCfg).MustBuild("rand")
	netEqual(t, n, n.CloneInto(nil))
}
