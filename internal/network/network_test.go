package network

import (
	"testing"
	"testing/quick"
)

// buildMux21 returns f = (a & ~s) | (b & s).
func buildMux21(t testing.TB) *Network {
	t.Helper()
	n := New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	l := n.AddAnd(a, ns)
	r := n.AddAnd(b, s)
	n.AddPO(n.AddOr(l, r), "f")
	if err := n.Validate(); err != nil {
		t.Fatalf("mux21 invalid: %v", err)
	}
	return n
}

func TestGateEval(t *testing.T) {
	cases := []struct {
		g    Gate
		in   []bool
		want bool
	}{
		{Const0, nil, false},
		{Const1, nil, true},
		{Buf, []bool{true}, true},
		{Not, []bool{true}, false},
		{Not, []bool{false}, true},
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{true, false}, true},
		{Nand, []bool{true, true}, false},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, false}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, true}, true},
		{Maj, []bool{true, true, false}, true},
		{Maj, []bool{true, false, false}, false},
		{Fanout, []bool{true}, true},
	}
	for _, c := range cases {
		if got := c.g.Eval(c.in...); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.g, c.in, got, c.want)
		}
	}
}

func TestGateEvalArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with wrong arity did not panic")
		}
	}()
	And.Eval(true)
}

func TestGateStringRoundTrip(t *testing.T) {
	for g := PI; g <= Fanout; g++ {
		back, err := GateFromString(g.String())
		if err != nil {
			t.Fatalf("GateFromString(%s): %v", g, err)
		}
		if back != g {
			t.Errorf("round trip %s -> %s", g, back)
		}
	}
	if _, err := GateFromString("BOGUS"); err == nil {
		t.Error("GateFromString accepted BOGUS")
	}
}

func TestMux21TruthTable(t *testing.T) {
	n := buildMux21(t)
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	// PI order a,b,s; bit i of row = PI i.
	for r := 0; r < 8; r++ {
		a := r&1 != 0
		b := r&2 != 0
		s := r&4 != 0
		want := a
		if s {
			want = b
		}
		if tt[r][0] != want {
			t.Errorf("mux21 row %d: got %v want %v", r, tt[r][0], want)
		}
	}
}

func TestCounts(t *testing.T) {
	n := buildMux21(t)
	if n.NumPIs() != 3 || n.NumPOs() != 1 {
		t.Fatalf("I/O = %d/%d, want 3/1", n.NumPIs(), n.NumPOs())
	}
	if g := n.NumGates(); g != 4 {
		t.Errorf("NumGates = %d, want 4", g)
	}
	if g := n.NumLogicGates(); g != 4 {
		t.Errorf("NumLogicGates = %d, want 4", g)
	}
	if d := n.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
}

func TestTopoOrderProperty(t *testing.T) {
	n := buildMux21(t)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[ID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		for _, f := range n.Fanins(id) {
			if pos[f] >= pos[id] {
				t.Fatalf("node %d appears before its fanin %d", id, f)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	n := New("cyclic")
	a := n.AddPI("a")
	g1 := n.AddBuf(a)
	g2 := n.AddBuf(g1)
	n.AddPO(g2, "f")
	n.ReplaceFanin(g1, 0, g2) // introduce a cycle
	if _, err := n.TopoOrder(); err == nil {
		t.Fatal("TopoOrder accepted a cyclic network")
	}
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted a cyclic network")
	}
}

func TestDeleteAndDangling(t *testing.T) {
	n := New("dangling")
	a := n.AddPI("a")
	b := n.AddPI("b")
	used := n.AddAnd(a, b)
	unused := n.AddOr(a, b)
	unused2 := n.AddNot(unused)
	n.AddPO(used, "f")
	d := n.DanglingNodes()
	if len(d) != 2 {
		t.Fatalf("DanglingNodes = %v, want 2 nodes", d)
	}
	if removed := n.RemoveDangling(); removed != 2 {
		t.Fatalf("RemoveDangling = %d, want 2", removed)
	}
	if n.IsAlive(unused) || n.IsAlive(unused2) {
		t.Error("dangling nodes still alive after RemoveDangling")
	}
	if !n.IsAlive(used) {
		t.Error("live node was removed")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeletePIPanics(t *testing.T) {
	n := New("x")
	a := n.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Fatal("Delete(PI) did not panic")
		}
	}()
	n.Delete(a)
}

func TestClone(t *testing.T) {
	n := buildMux21(t)
	c := n.Clone()
	eq, err := Equivalent(n, c)
	if err != nil || !eq {
		t.Fatalf("clone not equivalent: %v %v", eq, err)
	}
	// Mutating the clone must not affect the original.
	c.ReplaceFanin(c.POs()[0], 0, c.PIs()[0])
	eq, err = Equivalent(n, c)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("mutated clone still equivalent; deep copy is broken")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubstituteFanouts(t *testing.T) {
	n := New("fanout")
	a := n.AddPI("a")
	b := n.AddPI("b")
	// a drives four consumers.
	g1 := n.AddAnd(a, b)
	g2 := n.AddOr(a, b)
	g3 := n.AddXor(a, b)
	n.AddPO(g1, "o1")
	n.AddPO(g2, "o2")
	n.AddPO(g3, "o3")
	n.AddPO(a, "o4")
	orig := n.Clone()
	n.SubstituteFanouts(2)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if mf := n.MaxFanout(); mf > 2 {
		t.Fatalf("MaxFanout = %d after substitution, want <= 2", mf)
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatalf("fanout substitution changed function: %v %v", eq, err)
	}
}

func TestSubstituteFanoutsIdempotent(t *testing.T) {
	n := buildMux21(t)
	n.SubstituteFanouts(2)
	size := n.Size()
	n.SubstituteFanouts(2)
	if n.Size() != size {
		t.Fatalf("second substitution grew network: %d -> %d", size, n.Size())
	}
}

func TestSubstituteFanoutsSameSignalTwice(t *testing.T) {
	n := New("dup")
	a := n.AddPI("a")
	g := n.AddAnd(a, a) // same fanin twice
	n.AddPO(g, "f")
	orig := n.Clone()
	n.SubstituteFanouts(2)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if mf := n.MaxFanout(); mf > 2 {
		t.Fatalf("MaxFanout = %d, want <= 2", mf)
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatalf("substitution changed AND(a,a): %v %v", eq, err)
	}
}

func TestDecomposeXorToAOI(t *testing.T) {
	n := New("xor")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(a, b), "f")
	orig := n.Clone()
	set := GateSet{And: true, Or: true, Not: true, Maj: true}
	if err := n.Decompose(set); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n.Size(); id++ {
		g := n.Gate(ID(id))
		if g == Xor || g == Xnor || g == Nand || g == Nor {
			t.Fatalf("unsupported gate %s survived decomposition", g)
		}
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatalf("decomposition changed function: %v %v", eq, err)
	}
}

func TestDecomposeAllGatesToNand(t *testing.T) {
	n := New("all")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	n.AddPO(n.AddAnd(a, b), "and")
	n.AddPO(n.AddOr(a, b), "or")
	n.AddPO(n.AddXor(a, b), "xor")
	n.AddPO(n.AddXnor(a, b), "xnor")
	n.AddPO(n.AddMaj(a, b, c), "maj")
	n.AddPO(n.AddNor(a, b), "nor")
	n.AddPO(n.AddNot(a), "not")
	orig := n.Clone()
	if err := n.Decompose(GateSet{Nand: true}); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n.Size(); id++ {
		g := n.Gate(ID(id))
		if g.IsLogic() && g != Nand && g != Buf && g != Fanout && g != Const0 && g != Const1 {
			t.Fatalf("gate %s survived NAND decomposition", g)
		}
	}
	eq, err := Equivalent(orig, n)
	if err != nil || !eq {
		t.Fatalf("NAND decomposition changed function: %v %v", eq, err)
	}
}

func TestDecomposeIncompleteSetFails(t *testing.T) {
	n := New("x")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(a, b), "f")
	if err := n.Decompose(GateSet{And: true, Or: true}); err == nil {
		t.Fatal("Decompose accepted an incomplete gate set")
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := New("and")
	x := a.AddPI("x")
	y := a.AddPI("y")
	a.AddPO(a.AddAnd(x, y), "f")

	o := New("or")
	x2 := o.AddPI("x")
	y2 := o.AddPI("y")
	o.AddPO(o.AddOr(x2, y2), "f")

	eq, err := Equivalent(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("AND reported equivalent to OR")
	}
}

func TestEquivalentMismatchedIO(t *testing.T) {
	a := New("a")
	a.AddPO(a.AddPI("x"), "f")
	b := New("b")
	x := b.AddPI("x")
	b.AddPI("y")
	b.AddPO(x, "f")
	if _, err := Equivalent(a, b); err == nil {
		t.Fatal("Equivalent accepted mismatched PI counts")
	}
}

func TestRandomVectorsDeterministic(t *testing.T) {
	v1 := RandomVectors(70, 10, 42)
	v2 := RandomVectors(70, 10, 42)
	for i := range v1 {
		for j := range v1[i] {
			if v1[i][j] != v2[i][j] {
				t.Fatal("RandomVectors not deterministic")
			}
		}
	}
	v3 := RandomVectors(70, 10, 43)
	same := true
	for i := range v1 {
		for j := range v1[i] {
			if v1[i][j] != v3[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical vectors")
	}
}

func TestLevelsMonotoneProperty(t *testing.T) {
	n := buildMux21(t)
	levels := n.Levels()
	for id := 0; id < n.Size(); id++ {
		nd := n.Node(ID(id))
		if nd.Fn == None || nd.Fn == PO {
			continue
		}
		for _, f := range nd.Fanins {
			if levels[f] >= levels[ID(id)] {
				t.Fatalf("level(%d)=%d not greater than fanin level(%d)=%d",
					id, levels[ID(id)], f, levels[f])
			}
		}
	}
}

// TestMajDeMorganProperty checks MAJ(a,b,c) == MAJ(!a,!b,!c) negated,
// via quick-check over random assignments.
func TestMajDeMorganProperty(t *testing.T) {
	f := func(a, b, c bool) bool {
		return Maj.Eval(a, b, c) == !Maj.Eval(!a, !b, !c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFanoutTreePreservesFunctionQuick property-checks fanout
// substitution on randomly shaped small networks.
func TestFanoutTreePreservesFunctionQuick(t *testing.T) {
	f := func(shape [6]uint8, deg uint8) bool {
		n := randomNetwork(shape[:])
		orig := n.Clone()
		d := int(deg%3) + 2 // degree in [2,4]
		n.SubstituteFanouts(d)
		if err := n.Validate(); err != nil {
			return false
		}
		if n.MaxFanout() > d {
			return false
		}
		eq, err := Equivalent(orig, n)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDecomposePreservesFunctionQuick property-checks decomposition to
// the QCA ONE gate set on randomly shaped small networks.
func TestDecomposePreservesFunctionQuick(t *testing.T) {
	set := GateSet{And: true, Or: true, Not: true, Maj: true}
	f := func(shape [6]uint8) bool {
		n := randomNetwork(shape[:])
		orig := n.Clone()
		if err := n.Decompose(set); err != nil {
			return false
		}
		if err := n.Validate(); err != nil {
			return false
		}
		eq, err := Equivalent(orig, n)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomNetwork builds a small deterministic network whose shape is
// derived from the seed bytes: 4 PIs, one gate per seed byte, 2 POs.
func randomNetwork(seed []uint8) *Network {
	n := New("rand")
	ids := []ID{n.AddPI("a"), n.AddPI("b"), n.AddPI("c"), n.AddPI("d")}
	gates := []Gate{And, Or, Xor, Xnor, Nand, Nor, Not, Maj}
	for _, s := range seed {
		g := gates[int(s)%len(gates)]
		pick := func(k int) ID { return ids[(int(s)/(k+3))%len(ids)] }
		var id ID
		switch g.Arity() {
		case 1:
			id = n.AddGate(g, pick(1))
		case 2:
			id = n.AddGate(g, pick(1), pick(2))
		case 3:
			id = n.AddGate(g, pick(1), pick(2), pick(5))
		}
		ids = append(ids, id)
	}
	n.AddPO(ids[len(ids)-1], "f")
	n.AddPO(ids[len(ids)-2], "g")
	return n
}
