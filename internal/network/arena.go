package network

// Arena is a bump allocator for the node and fanin slices CloneInto
// carves its copies from. The campaign scheduler keeps one arena per
// worker and calls Reset between (benchmark, flow) jobs, so repeated
// cloning of the same prepared networks reuses two slabs instead of
// allocating one slice per node per clone.
//
// Slices handed out by an arena are capped with full slice expressions:
// appending past a slice's length reallocates into regular heap memory
// rather than growing into the slab, so clones stay isolated even when
// they are mutated after cloning. Reset rewinds the slabs; the caller
// must guarantee that no network cloned from the arena is still in use
// when it resets (in the scheduler, a job's clones never outlive the
// job). An arena is not safe for concurrent use; give each worker its
// own. A nil *Arena is valid and falls back to plain allocations.
type Arena struct {
	nodeSlab []Node
	nodeOff  int
	idSlab   []ID
	idOff    int
}

// NewArena returns an empty arena. Slabs grow on demand.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena so the next CloneInto reuses its slabs. Node
// slots are re-zeroed (they hold pointers — names, fanin slice headers —
// that must not leak between jobs); ID slots are fully overwritten by
// the next use and need no clearing.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	used := a.nodeSlab[:a.nodeOff]
	for i := range used {
		used[i] = Node{}
	}
	a.nodeOff = 0
	a.idOff = 0
}

// nodes returns a zeroed, length-n, capacity-capped []Node from the
// slab, growing it if needed.
func (a *Arena) nodes(n int) []Node {
	if a == nil {
		return make([]Node, n)
	}
	if a.nodeOff+n > len(a.nodeSlab) {
		// A fresh slab abandons the old one; clones already carved from
		// it keep it alive until they are dropped, which is exactly the
		// lifetime they need.
		a.nodeSlab = make([]Node, max(n, 2*len(a.nodeSlab)+1024))
		a.nodeOff = 0
	}
	s := a.nodeSlab[a.nodeOff : a.nodeOff+n : a.nodeOff+n]
	a.nodeOff += n
	return s
}

// ids copies src into a capacity-capped []ID carved from the slab. A
// nil/empty src returns nil, matching what append([]ID(nil), ...) did.
func (a *Arena) ids(src []ID) []ID {
	if len(src) == 0 {
		return nil
	}
	if a == nil {
		return append([]ID(nil), src...)
	}
	n := len(src)
	if a.idOff+n > len(a.idSlab) {
		a.idSlab = make([]ID, max(n, 2*len(a.idSlab)+4096))
		a.idOff = 0
	}
	s := a.idSlab[a.idOff : a.idOff+n : a.idOff+n]
	a.idOff += n
	copy(s, src)
	return s
}
