package network

// Balance pads every fanin of every gate with buffer chains so that all
// paths from the primary inputs to any node have equal length — the
// classic FCN synchronization transform (signals in clocked field-coupled
// circuits arrive in lockstep only if reconvergent paths have the same
// number of clocked elements). POs are optionally aligned to the same
// global depth so that all outputs switch in the same cycle.
//
// The transform preserves functionality and returns the number of
// inserted buffers.
func (n *Network) Balance(alignOutputs bool) int {
	order := n.MustTopoOrder()

	// Node levels before balancing: PIs at 0, gates at 1 + max(fanins).
	level := make(map[ID]int, len(order))
	inserted := 0

	// pad extends src with a chain of k buffers.
	pad := func(src ID, k int) ID {
		for i := 0; i < k; i++ {
			src = n.AddBuf(src)
			inserted++
		}
		return src
	}

	for _, id := range order {
		nd := n.Node(id)
		switch nd.Fn {
		case None, PI, Const0, Const1:
			level[id] = 0
			continue
		case PO:
			level[id] = level[nd.Fanins[0]]
			continue
		}
		max := 0
		for _, f := range nd.Fanins {
			if level[f] > max {
				max = level[f]
			}
		}
		for idx, f := range nd.Fanins {
			if d := max - level[f]; d > 0 {
				nf := pad(f, d)
				level[nf] = max
				n.ReplaceFanin(id, idx, nf)
			}
		}
		level[id] = max + 1
	}

	if alignOutputs {
		maxOut := 0
		for _, po := range n.pos {
			if l := level[n.Fanins(po)[0]]; l > maxOut {
				maxOut = l
			}
		}
		for _, po := range n.pos {
			drv := n.Fanins(po)[0]
			if d := maxOut - level[drv]; d > 0 {
				n.ReplaceFanin(po, 0, pad(drv, d))
			}
		}
	}
	return inserted
}

// IsBalanced reports whether every node's fanins sit on one common level
// (and, when checkOutputs is set, all PO drivers share the global depth).
func (n *Network) IsBalanced(checkOutputs bool) bool {
	order := n.MustTopoOrder()
	level := make(map[ID]int, len(order))
	for _, id := range order {
		nd := n.Node(id)
		switch nd.Fn {
		case None, PI, Const0, Const1:
			level[id] = 0
			continue
		case PO:
			level[id] = level[nd.Fanins[0]]
			continue
		}
		lvl := -1
		for _, f := range nd.Fanins {
			if lvl == -1 {
				lvl = level[f]
			} else if level[f] != lvl {
				return false
			}
		}
		level[id] = lvl + 1
	}
	if checkOutputs {
		out := -1
		for _, po := range n.pos {
			l := level[n.Fanins(po)[0]]
			if out == -1 {
				out = l
			} else if l != out {
				return false
			}
		}
	}
	return true
}
