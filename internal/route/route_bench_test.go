package route

import (
	"testing"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
)

func BenchmarkRouteAcross32x32(b *testing.B) {
	l := layout.New("b", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(31, 31), layout.Tile{Fn: network.PO, Name: "f"})
	opts := Options{MaxX: 31, MaxY: 31}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(l, layout.C(0, 0), layout.C(31, 31), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteUSEFeedback(b *testing.B) {
	l := layout.New("b", layout.Cartesian, clocking.USE)
	l.MustPlace(layout.C(20, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PO, Name: "f"})
	opts := Options{MaxX: 24, MaxY: 24}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(l, layout.C(20, 0), layout.C(0, 0), opts); err != nil {
			b.Fatal(err)
		}
	}
}
