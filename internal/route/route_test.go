package route

import (
	"errors"
	"testing"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
)

func wire(in ...layout.Coord) layout.Tile {
	return layout.Tile{Fn: network.Buf, Wire: true, Node: network.Invalid, Incoming: in}
}

func TestRouteAdjacent(t *testing.T) {
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PO, Name: "f"})
	path, err := Route(l, layout.C(0, 0), layout.C(1, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 0 {
		t.Errorf("adjacent route has %d intermediate tiles, want 0", len(path))
	}
}

func TestRouteStraightLine(t *testing.T) {
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(4, 0), layout.Tile{Fn: network.PO, Name: "f"})
	path, err := Route(l, layout.C(0, 0), layout.C(4, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path = %v, want 3 tiles", path)
	}
	// 2DDWave: zones must increment along the path.
	prev := l.Zone(layout.C(0, 0))
	for _, c := range path {
		z := l.Zone(c)
		if z != (prev+1)%4 {
			t.Errorf("zone jump %d -> %d at %v", prev, z, c)
		}
		prev = z
	}
}

func TestRouteAroundObstacle(t *testing.T) {
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.And}) // obstacle on the diagonal
	l.MustPlace(layout.C(2, 2), layout.Tile{Fn: network.PO, Name: "f"})
	path, err := Route(l, layout.C(0, 0), layout.C(2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range path {
		if c.SameXY(layout.C(1, 1)) {
			t.Fatal("path goes through occupied tile")
		}
	}
	if len(path) != 3 {
		t.Errorf("path = %v, want 3 intermediate tiles", path)
	}
}

func TestRouteNoBackwards2DDWave(t *testing.T) {
	// Under 2DDWave a westward connection is impossible.
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(4, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PO, Name: "f"})
	_, err := Route(l, layout.C(4, 0), layout.C(0, 0), Options{MaxX: 10, MaxY: 10})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestRouteBackwardsUSEFeedback(t *testing.T) {
	// USE admits in-plane feedback, so a westward connection must route.
	l := layout.New("t", layout.Cartesian, clocking.USE)
	l.MustPlace(layout.C(4, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PO, Name: "f"})
	path, err := Route(l, layout.C(4, 0), layout.C(0, 0), Options{MaxX: 12, MaxY: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("expected a non-trivial feedback path")
	}
}

func TestRouteCrossing(t *testing.T) {
	// A horizontal wire blocks the ground layer; with crossings enabled
	// the router must go over it.
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	// Vertical barrier of wires at x=2 for y=0..4.
	l.MustPlace(layout.C(2, 0), wire())
	for y := 1; y <= 4; y++ {
		l.MustPlace(layout.C(2, y), wire(layout.C(2, y-1)))
	}
	l.MustPlace(layout.C(0, 2), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(4, 2), layout.Tile{Fn: network.PO, Name: "f"})

	if _, err := Route(l, layout.C(0, 2), layout.C(4, 2), Options{MaxX: 4, MaxY: 4}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute without crossings (bounded)", err)
	}
	path, err := Route(l, layout.C(0, 2), layout.C(4, 2), Options{MaxX: 4, MaxY: 4, AllowCrossings: true})
	if err != nil {
		t.Fatal(err)
	}
	hasCrossing := false
	for _, c := range path {
		if c.Z == 1 {
			hasCrossing = true
			if g := l.At(c.Ground()); g == nil || !g.IsWire() {
				t.Error("crossing tile not above a wire")
			}
		}
	}
	if !hasCrossing {
		t.Errorf("expected a crossing in %v", path)
	}
}

func TestRoutePrefersGroundLayer(t *testing.T) {
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(3, 0), layout.Tile{Fn: network.PO, Name: "f"})
	path, err := Route(l, layout.C(0, 0), layout.C(3, 0), Options{AllowCrossings: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range path {
		if c.Z != 0 {
			t.Errorf("unnecessary crossing at %v", c)
		}
	}
}

func TestPlaceWiresAndRemove(t *testing.T) {
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	src, dst := layout.C(0, 0), layout.C(4, 0)
	l.MustPlace(src, layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(dst, layout.Tile{Fn: network.PO, Name: "f"})
	if err := Connect(l, src, dst, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := l.NumTiles(); got != 5 {
		t.Fatalf("tiles after connect = %d, want 5", got)
	}
	if len(l.At(dst).Incoming) != 1 {
		t.Fatal("destination not connected")
	}
	if err := RemoveWirePath(l, src, dst); err != nil {
		t.Fatal(err)
	}
	if got := l.NumTiles(); got != 2 {
		t.Fatalf("tiles after removal = %d, want 2", got)
	}
	if len(l.At(dst).Incoming) != 0 {
		t.Error("destination still connected")
	}
}

func TestRemoveWirePathSharedFanout(t *testing.T) {
	// src feeds a fanout whose wire chain splits; removing one consumer's
	// chain must not delete shared segments.
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	src := layout.C(0, 0)
	l.MustPlace(src, layout.Tile{Fn: network.PI, Name: "a"})
	f := layout.C(1, 0)
	l.MustPlace(f, layout.Tile{Fn: network.Fanout, Incoming: []layout.Coord{src}})
	d1, d2 := layout.C(3, 0), layout.C(1, 2)
	l.MustPlace(d1, layout.Tile{Fn: network.PO, Name: "o1"})
	l.MustPlace(d2, layout.Tile{Fn: network.PO, Name: "o2"})
	if err := Connect(l, f, d1, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Connect(l, f, d2, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := RemoveWirePath(l, f, d1); err != nil {
		t.Fatal(err)
	}
	// The fanout tile and the chain to d2 must survive.
	if l.At(f) == nil {
		t.Fatal("fanout tile deleted")
	}
	if len(l.At(d2).Incoming) != 1 {
		t.Fatal("other consumer lost its connection")
	}
}

func TestRouteHexRow(t *testing.T) {
	l := layout.New("t", layout.HexOddRow, clocking.Row)
	src, dst := layout.C(2, 0), layout.C(2, 4)
	l.MustPlace(src, layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(dst, layout.Tile{Fn: network.PO, Name: "f"})
	path, err := Route(l, src, dst, Options{MaxX: 8, MaxY: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Errorf("hex path length = %d, want 3", len(path))
	}
	prevY := 0
	for _, c := range path {
		if c.Y != prevY+1 {
			t.Errorf("ROW path must descend one row per hop, got %v", path)
		}
		prevY = c.Y
	}
}

func TestRouteDeterministic(t *testing.T) {
	build := func() []layout.Coord {
		l := layout.New("t", layout.Cartesian, clocking.USE)
		l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
		l.MustPlace(layout.C(5, 5), layout.Tile{Fn: network.PO, Name: "f"})
		p, err := Route(l, layout.C(0, 0), layout.C(5, 5), Options{MaxX: 10, MaxY: 10})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := build(), build()
	if len(p1) != len(p2) {
		t.Fatal("route not deterministic in length")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("route not deterministic")
		}
	}
}

func TestRouteErrors(t *testing.T) {
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	if _, err := Route(l, layout.C(0, 0), layout.C(3, 3), Options{}); err == nil {
		t.Error("route to empty tile accepted")
	}
	if _, err := Route(l, layout.C(2, 2), layout.C(0, 0), Options{}); err == nil {
		t.Error("route from empty tile accepted")
	}
}
