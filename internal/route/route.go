// Package route finds wire paths on clocked FCN layouts.
//
// Legal signal movement is dictated entirely by the clocking: a signal on
// a tile in zone c may only step to an adjacent grid position in zone
// (c+1) mod n. The router searches this directed graph with A*,
// supporting two-layer wire crossings (a wire may run on the crossing
// layer above an existing ground-layer wire).
package route

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/network"
)

// Options tunes a routing query.
type Options struct {
	// MaxX and MaxY bound the search area (inclusive). Zero values leave
	// the respective axis bounded by the current layout bounding box plus
	// a margin.
	MaxX, MaxY int
	// AllowCrossings permits segments on the crossing layer above
	// ground-layer wires.
	AllowCrossings bool
	// MaxExpansions aborts hopeless searches; 0 means DefaultMaxExpansions.
	MaxExpansions int
}

// DefaultMaxExpansions bounds the A* search effort per query.
const DefaultMaxExpansions = 200000

// ErrNoRoute is wrapped by Route when no legal wire path exists.
var ErrNoRoute = fmt.Errorf("route: no legal path")

// distanceLB is an admissible lower bound on the number of hops between
// two grid positions. It runs once per neighbor expansion of the A*
// search, which the BENCH route experiments measure per-tile.
//
//perf:hot
func distanceLB(t layout.Topology, a, b layout.Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	switch t {
	case layout.Cartesian:
		return dx + dy
	case layout.HexOddRow:
		// On a hex grid a vertical step can also advance horizontally, so
		// max(dx, dy) underestimates the true hex distance.
		if dx > dy {
			return dx
		}
		return dy
	}
	return dx + dy
}

// Stats reports the search effort of one routing query.
type Stats struct {
	// Expansions is the number of open-list entries settled (popped and
	// expanded) by the A* search.
	Expansions int
}

// Route finds the cheapest legal wire path from the placed tile at src to
// the placed tile at dst. The returned slice lists the intermediate wire
// positions (possibly empty when the tiles are directly adjacent in
// consecutive zones); src and dst are not included.
//
// Costs: each wire tile costs 10, crossing-layer tiles cost 12, so the
// router prefers short, crossing-free paths deterministically.
func Route(l *layout.Layout, src, dst layout.Coord, opts Options) ([]layout.Coord, error) {
	path, _, err := RouteWithStats(l, src, dst, opts)
	return path, err
}

// RouteWithStats is Route with search-effort reporting, for benchmarks
// and diagnostics that track router throughput in expansions/sec.
//
//perf:hot
func RouteWithStats(l *layout.Layout, src, dst layout.Coord, opts Options) ([]layout.Coord, Stats, error) {
	if l.At(src) == nil {
		return nil, Stats{}, fmt.Errorf("route: source %v is empty", src)
	}
	if l.At(dst) == nil {
		return nil, Stats{}, fmt.Errorf("route: destination %v is empty", dst)
	}
	maxX, maxY := opts.MaxX, opts.MaxY
	if maxX == 0 || maxY == 0 {
		w, h := l.BoundingBox()
		if maxX == 0 {
			maxX = w + 4
		}
		if maxY == 0 {
			maxY = h + 4
		}
	}
	maxExp := opts.MaxExpansions
	if maxExp == 0 {
		maxExp = DefaultMaxExpansions
	}

	usable := func(c layout.Coord) bool {
		if c.X < 0 || c.Y < 0 || c.X > maxX || c.Y > maxY {
			return false
		}
		if !l.IsEmpty(c) {
			return false
		}
		if c.Z == 1 {
			if !opts.AllowCrossings {
				return false
			}
			ground := l.At(c.Ground())
			if ground == nil || !ground.IsWire() {
				return false
			}
		}
		return true
	}

	// A* from src: states are empty coordinates reachable by legal hops,
	// tracked on the pooled flat-grid frontier.
	f := frontierPool.Get().(*frontier)
	defer frontierPool.Put(f)
	f.reset(maxX+1, maxY+1)

	push := func(c layout.Coord, prev int32, cost int32) {
		ci := f.index(c)
		cl := &f.cells[ci]
		if cl.gen == f.gen && cl.cost <= cost {
			return
		}
		*cl = cell{gen: f.gen, cost: cost, prev: prev}
		f.push(pqItem{coord: c, idx: ci, cost: cost, est: cost + 10*int32(distanceLB(l.Topo, c, dst))})
	}

	// Seed with the first hops out of src.
	f.nbuf = l.AppendOutgoingNeighbors(src, f.nbuf[:0])
	for _, c := range f.nbuf {
		if c.SameXY(dst) && c.Z == dst.Z {
			// Directly adjacent: empty path.
			return nil, Stats{}, nil
		}
		if usable(c) {
			cost := int32(10)
			if c.Z == 1 {
				cost = 12
			}
			push(c, prevSrc, cost)
		}
	}

	expansions := 0
	for len(f.items) > 0 {
		it := f.pop()
		cl := &f.cells[it.idx]
		if cl.seen || cl.cost < it.cost {
			continue
		}
		cl.seen = true
		expansions++
		if expansions > maxExp {
			break
		}
		curCost := cl.cost
		f.nbuf = l.AppendOutgoingNeighbors(it.coord, f.nbuf[:0])
		for _, nxt := range f.nbuf {
			if nxt.SameXY(dst) && nxt.Z == dst.Z {
				// Reconstruct: it.coord is the last intermediate tile.
				var path []layout.Coord
				for idx := it.idx; idx != prevSrc; idx = f.cells[idx].prev {
					path = append(path, f.coordAt(idx))
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, Stats{Expansions: expansions}, nil
			}
			if !usable(nxt) {
				continue
			}
			step := int32(10)
			if nxt.Z == 1 {
				step = 12
			}
			push(nxt, it.idx, curCost+step)
		}
	}
	return nil, Stats{Expansions: expansions}, fmt.Errorf("%w from %v to %v (zones %d->%d, %d expansions)",
		ErrNoRoute, src, dst, l.Zone(src), l.Zone(dst), expansions)
}

// PlaceWires materializes a routed path as wire tiles and connects the
// chain src -> path... -> dst. The destination's Incoming gains one entry.
func PlaceWires(l *layout.Layout, src, dst layout.Coord, path []layout.Coord) error {
	prev := src
	for _, c := range path {
		if err := l.Place(c, layout.Tile{
			Fn:       network.Buf,
			Wire:     true,
			Node:     network.Invalid,
			Incoming: []layout.Coord{prev},
		}); err != nil {
			return err
		}
		prev = c
	}
	return l.Connect(prev, dst)
}

// Connect routes from src to dst and immediately places the wires.
func Connect(l *layout.Layout, src, dst layout.Coord, opts Options) error {
	path, err := Route(l, src, dst, opts)
	if err != nil {
		return err
	}
	return PlaceWires(l, src, dst, path)
}

// RemoveWirePath removes the wire chain feeding dst from src: it walks
// backwards from dst's incoming connection, deleting wire tiles that
// belong exclusively to this connection. Gate tiles and wires with other
// consumers are left in place.
func RemoveWirePath(l *layout.Layout, src, dst layout.Coord) error {
	t := l.At(dst)
	if t == nil {
		return fmt.Errorf("route: remove from empty destination %v", dst)
	}
	// Find which incoming chain of dst originates (transitively) at src.
	for _, in := range t.Incoming {
		chain, ok := traceChain(l, in, src)
		if !ok {
			continue
		}
		if err := l.Disconnect(in, dst); err != nil {
			return err
		}
		// Delete from the dst side backwards; chain[0] is `in`.
		for _, w := range chain {
			if len(l.Outgoing(w)) > 0 {
				break // shared by another consumer; stop deleting
			}
			wt := l.At(w)
			srcs := append([]layout.Coord(nil), wt.Incoming...)
			for _, s := range srcs {
				if err := l.Disconnect(s, w); err != nil {
					return err
				}
			}
			if err := l.Clear(w); err != nil {
				return err
			}
			// A foreign crossing-layer wire above a removed ground wire
			// would be left floating; lower it onto the freed tile.
			if w.Z == 0 {
				if up := l.At(w.Above()); up != nil {
					if err := l.MoveTile(w.Above(), w); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	return fmt.Errorf("route: no wire chain from %v to %v", src, dst)
}

// traceChain follows wire tiles backwards from w until reaching src.
// It returns the wire tiles in walk order and whether src was reached.
// It runs once per routed net on the measured routing path.
//
//perf:hot
func traceChain(l *layout.Layout, w, src layout.Coord) ([]layout.Coord, bool) {
	var chain []layout.Coord
	cur := w
	for {
		if cur == src {
			return chain, true
		}
		t := l.At(cur)
		if t == nil || !t.IsWire() {
			return nil, false
		}
		chain = append(chain, cur)
		if len(t.Incoming) != 1 {
			return nil, false
		}
		cur = t.Incoming[0]
	}
}
