package route

import (
	"sync"

	"repro/internal/layout"
)

// The A* working state lives in a pooled frontier: a flat cell grid
// indexed by (z*H+y)*W+x replaces the old map[layout.Coord]state closed
// set, and a typed binary heap over pqItem values replaces
// container/heap's interface{} boxing. Each routing query borrows a
// frontier from the pool, resets it in O(1) via generation stamps, and
// returns it, so steady-state routing performs no per-query allocation
// beyond the returned path.

// pqItem is one open-list entry. Items are stored by value; the coord is
// kept alongside the flat index so the comparator can reproduce the
// historical (est, Y, X, Z) tie-break exactly.
type pqItem struct {
	coord layout.Coord
	idx   int32
	cost  int32
	est   int32
}

// cell is the per-coordinate bookkeeping of the search. gen stamps the
// query the entry belongs to, so reset is a counter bump instead of a
// grid clear.
type cell struct {
	gen  uint32
	cost int32
	prev int32 // flat index of the predecessor; prevSrc for first hops
	seen bool
}

// prevSrc marks cells whose predecessor is the (non-grid) source tile.
const prevSrc int32 = -1

type frontier struct {
	cells []cell
	items []pqItem
	nbuf  []layout.Coord
	gen   uint32
	w, h  int
}

var frontierPool = sync.Pool{New: func() any { return new(frontier) }}

// reset prepares the frontier for a query over a (w x h x 2-layer) grid.
func (f *frontier) reset(w, h int) {
	n := w * h * 2
	if cap(f.cells) < n {
		f.cells = make([]cell, n)
		f.gen = 0
	}
	f.cells = f.cells[:n]
	f.items = f.items[:0]
	f.w, f.h = w, h
	f.gen++
	if f.gen == 0 { // counter wrapped: stamp 0 must mean "stale"
		clear(f.cells)
		f.gen = 1
	}
}

// index flattens an in-bounds coordinate.
//
//perf:hot
func (f *frontier) index(c layout.Coord) int32 {
	return int32((c.Z*f.h+c.Y)*f.w + c.X)
}

// coordAt inverts index; used only during path reconstruction.
func (f *frontier) coordAt(idx int32) layout.Coord {
	i := int(idx)
	plane := f.w * f.h
	z := i / plane
	i -= z * plane
	return layout.Coord{X: i % f.w, Y: i / f.w, Z: z}
}

// less orders the open list by estimated total cost with the
// deterministic (Y, X, Z) coordinate tie-break that keeps layouts
// byte-reproducible.
//
//perf:hot
func (f *frontier) less(i, j int) bool {
	a, b := &f.items[i], &f.items[j]
	if a.est != b.est {
		return a.est < b.est
	}
	if a.coord.Y != b.coord.Y {
		return a.coord.Y < b.coord.Y
	}
	if a.coord.X != b.coord.X {
		return a.coord.X < b.coord.X
	}
	return a.coord.Z < b.coord.Z
}

// push inserts an open-list entry, keeping the heap invariant.
//
//perf:hot
func (f *frontier) push(it pqItem) {
	f.items = append(f.items, it)
	f.siftUp(len(f.items) - 1)
}

// pop removes and returns the minimum entry. The caller checks Len > 0.
//
//perf:hot
func (f *frontier) pop() pqItem {
	n := len(f.items) - 1
	f.items[0], f.items[n] = f.items[n], f.items[0]
	f.siftDown(0, n)
	it := f.items[n]
	f.items = f.items[:n]
	return it
}

//perf:hot
func (f *frontier) siftUp(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !f.less(j, i) {
			break
		}
		f.items[i], f.items[j] = f.items[j], f.items[i]
		j = i
	}
}

//perf:hot
func (f *frontier) siftDown(i, n int) {
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && f.less(j2, j1) {
			j = j2
		}
		if !f.less(j, i) {
			break
		}
		f.items[i], f.items[j] = f.items[j], f.items[i]
		i = j
	}
}
