# Development targets. `make check` is the tier-1+ gate described in
# ROADMAP.md: build, vet, formatting, the project linter (mntlint), and
# the full test suite with the race detector on the concurrency-sensitive
# packages.

GO ?= go

.PHONY: all build test race check fmt vet lint bench bench-all

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs ./internal/server ./internal/core ./internal/route

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/mntlint

check: build vet fmt lint test race

# bench runs one campaign per worker count (serial and all-cores) as a
# scheduler smoke test; bench-all runs the full experiment suite E1-E7.
bench:
	$(GO) test -bench='^BenchmarkCampaign$$' -benchtime=1x -run='^$$' .

bench-all:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
