# Development targets. `make check` is the tier-1+ gate described in
# ROADMAP.md: build, vet, formatting, the project linter (mntlint), and
# the full test suite with the race detector on the concurrency-sensitive
# packages.

GO ?= go

.PHONY: all build test race check fmt vet lint lint-fix lint-sarif bench bench-all trace-smoke \
	journal-smoke selftest fuzz-smoke perfsnap perfdiff perfsnap-smoke loadtest-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs ./internal/server ./internal/server/registry \
		./internal/server/loadtest ./internal/core ./internal/route \
		./internal/conformance ./internal/verify ./internal/perf \
		./internal/network ./internal/layout

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/mntlint

# lint-fix applies every machine-safe suggested fix (errors.Is
# rewrites, %w wrapping) in place, then reports what is left for hand
# fixing. The rewritten files come out gofmt-clean.
lint-fix:
	$(GO) run ./cmd/mntlint -fix

# lint-sarif writes the findings as a SARIF 2.1.0 log for CI
# annotation upload:
#   make lint-sarif SARIF_OUT=mntlint.sarif
# It always exits 0 — CI gates on `make lint` inside `make check`; the
# SARIF step only annotates.
SARIF_OUT ?= mntlint.sarif
lint-sarif:
	$(GO) run ./cmd/mntlint -sarif > "$(SARIF_OUT)" || true

check: build vet fmt lint test race selftest journal-smoke loadtest-smoke

# selftest is the bounded conformance smoke (~30s): seeded random
# networks through every registered flow with the full invariant
# battery; any hard-invariant violation fails the gate. See
# docs/CONFORMANCE.md. The trap removes the repro scratch directory
# even when the gate fails, so a red run never leaves the tree dirty
# (the shrunk repro JSON is also printed inline on failure).
selftest:
	@trap 'rm -rf selftest-repros' EXIT; \
	$(GO) run ./cmd/mntbench selftest -seed 1 -n 6 -q -repro-dir selftest-repros

# fuzz-smoke gives each native fuzz target a short budget; crashers
# land in the package's testdata/fuzz corpus.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadString$$' -fuzztime 6s ./internal/fgl
	$(GO) test -run='^$$' -fuzz='^FuzzParseString$$' -fuzztime 6s ./internal/verilog
	$(GO) test -run='^$$' -fuzz='^FuzzExtractNetwork$$' -fuzztime 6s ./internal/verify
	$(GO) test -run='^$$' -fuzz='^FuzzEquivalent$$' -fuzztime 6s ./internal/verify
	$(GO) test -run='^$$' -fuzz='^FuzzCustomScheme$$' -fuzztime 6s ./internal/clocking
	$(GO) test -run='^$$' -fuzz='^FuzzSimulateWords$$' -fuzztime 6s ./internal/network
	$(GO) test -run='^$$' -fuzz='^FuzzCursorDecode$$' -fuzztime 6s ./internal/server/registry
	$(GO) test -run='^$$' -fuzz='^FuzzFilterQuery$$' -fuzztime 6s ./internal/server/registry

# loadtest-smoke hammers the /v1 registry API in-process with a bounded
# request budget and fails when any request errors or the p99 latency —
# read back from the server's own /metrics histograms — blows the
# budget. The full 1000-worker battery lives in
# internal/server/loadtest's tests; this target proves the CLI gate.
loadtest-smoke:
	$(GO) run ./cmd/mntbench loadtest -n 3000 -c 128 -p99 250ms

# bench runs one campaign per worker count (serial and all-cores) as a
# scheduler smoke test plus the span/tracing overhead microbenchmark;
# bench-all runs the full experiment suite E1-E7. To record a run as a
# point on the committed performance trajectory, use `make perfsnap`
# (and `make perfdiff` to compare two points) instead of eyeballing
# -bench output.
bench:
	$(GO) test -bench='^BenchmarkCampaign$$' -benchtime=1x -run='^$$' .
	$(GO) test -bench='^BenchmarkSpanOverhead$$' -run='^$$' ./internal/obs

bench-all:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# trace-smoke runs a tiny campaign with -trace and validates that the
# exported Chrome trace-event file decodes. The trap removes the trace
# file even when a step fails so the tree stays clean for gofmt-style
# checks.
trace-smoke:
	@trap 'rm -f mntbench-trace-smoke.json' EXIT; \
	$(GO) run ./cmd/mntbench table -set Trindade16 -name mux21 -q \
		-exact-timeout 1 -trace mntbench-trace-smoke.json >/dev/null && \
	$(GO) run ./cmd/mntbench tracecheck mntbench-trace-smoke.json

# journal-smoke runs a tiny campaign with -journal, then proves the
# flight-recorder acceptance loop: `journal verify` declares the file
# complete and `journal summary -dir` recomputes the outcome table from
# events and cross-checks the layouts the campaign wrote. The trap
# removes the scratch directory even when a step fails.
journal-smoke:
	@trap 'rm -rf mntbench-journal-smoke' EXIT; \
	$(GO) run ./cmd/mntbench generate -set Trindade16 -name mux21 -q \
		-exact-timeout 1 -dir mntbench-journal-smoke \
		-journal mntbench-journal-smoke/campaign.jsonl >/dev/null && \
	$(GO) run ./cmd/mntbench journal verify mntbench-journal-smoke/campaign.jsonl && \
	$(GO) run ./cmd/mntbench journal summary -dir mntbench-journal-smoke \
		mntbench-journal-smoke/campaign.jsonl

# perfsnap runs the full experiment suite and writes the next
# BENCH_<n>.json performance snapshot (commit it: the files are the
# repo's perf trajectory). perfdiff compares two snapshots and exits
# nonzero on regression:
#   make perfdiff OLD=BENCH_1.json NEW=BENCH_2.json
# See docs/OBSERVABILITY.md, "Performance snapshots & runtime telemetry".
perfsnap:
	$(GO) run ./cmd/mntbench perfsnap

# The throughput metrics of the hot-path experiments (E9/E10) are
# guarded with negative thresholds: a >30% drop in vectors/sec or A*
# expansions/sec fails the diff just like an ns/op increase would.
OLD ?= BENCH_1.json
NEW ?= BENCH_2.json
PERF_THRESHOLDS ?= vectors_per_sec=-0.3,expansions_per_sec=-0.3
perfdiff:
	$(GO) run ./cmd/mntbench perfdiff -threshold '$(PERF_THRESHOLDS)' $(OLD) $(NEW)

# perfsnap-smoke is the bounded CI variant: one benchmark iteration per
# experiment over the cheap experiments, schema-validated with perfdiff.
# The output path is overridable so CI can keep the JSON as a build
# artifact; the default run cleans up after itself.
PERFSNAP_SMOKE_OUT ?= mntbench-perfsnap-smoke.json
perfsnap-smoke:
	@if [ "$(PERFSNAP_SMOKE_OUT)" = "mntbench-perfsnap-smoke.json" ]; then \
		trap 'rm -f mntbench-perfsnap-smoke.json' EXIT; \
	fi; \
	$(GO) run ./cmd/mntbench perfsnap -benchtime 1x \
		-experiments E3,E4,E6,E8,E9,E10 -out "$(PERFSNAP_SMOKE_OUT)" && \
	$(GO) run ./cmd/mntbench perfdiff -schema-check "$(PERFSNAP_SMOKE_OUT)"
