# Development targets. `make check` is the tier-1+ gate described in
# ROADMAP.md: build, vet, formatting, and the full test suite with the
# race detector on the concurrency-sensitive packages.

GO ?= go

.PHONY: all build test race check fmt vet bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs ./internal/server

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: build vet fmt test race

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
