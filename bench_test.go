// Package repro's top-level benchmarks regenerate the paper's artifacts
// (see DESIGN.md, experiment index):
//
//	E1  BenchmarkTableIQCAOne    — Table I, QCA ONE half
//	E2  BenchmarkTableIBestagon  — Table I, Bestagon half
//	E3  BenchmarkDeltaA          — Table I, ΔA column
//	E4  BenchmarkWebInterface    — Figure 1 (filter + download requests)
//	E5  BenchmarkRouterBestagon  — §II claim: router function area ratio
//	E6  BenchmarkOrthoScaling    — runtime column t across circuit sizes
//	E7  BenchmarkCampaign        — scheduler throughput, workers=1 vs NumCPU
//
// Each benchmark iteration regenerates its artifact from scratch and
// reports the headline quantities as custom metrics. The default scope
// is the small suites (Trindade16 / Fontes18) so `go test -bench=.`
// terminates in minutes; set MNTBENCH_FULL=1 to include the large
// ISCAS85/EPFL circuits like the paper's full table (slow: tens of
// minutes, several GB of memory).
package repro

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/inord"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/server"
)

func fullRun() bool { return os.Getenv("MNTBENCH_FULL") == "1" }

func tableBenches(b *testing.B) []bench.Benchmark {
	b.Helper()
	var out []bench.Benchmark
	for _, bm := range bench.All() {
		if !fullRun() && bm.PubNodes > 120 {
			continue
		}
		out = append(out, bm)
	}
	return out
}

func tableLimits() core.Limits {
	return core.Limits{
		ExactTimeout: 2 * time.Second,
		NanoTimeout:  3 * time.Second,
		PLOTimeout:   10 * time.Second,
	}
}

// benchTable generates the Table I rows for one library and reports the
// aggregate area and mean ΔA.
func benchTable(b *testing.B, lib *gatelib.Library) {
	benches := tableBenches(b)
	for i := 0; i < b.N; i++ {
		db := core.Generate(context.Background(), benches, lib, tableLimits(), nil)
		rows := db.TableI(benches, lib)
		if len(rows) == 0 {
			b.Fatal("no table rows")
		}
		totalArea, deltaSum := 0, 0.0
		for _, r := range rows {
			totalArea += r.Area
			deltaSum += r.DeltaA
		}
		b.ReportMetric(float64(totalArea), "tiles-total")
		b.ReportMetric(deltaSum/float64(len(rows)), "ΔA-mean-%")
		b.ReportMetric(float64(len(rows)), "functions")
	}
}

// BenchmarkTableIQCAOne regenerates the QCA ONE half of Table I (E1).
func BenchmarkTableIQCAOne(b *testing.B) { benchTable(b, gatelib.QCAOne) }

// BenchmarkTableIBestagon regenerates the Bestagon half of Table I (E2).
func BenchmarkTableIBestagon(b *testing.B) { benchTable(b, gatelib.Bestagon) }

// BenchmarkDeltaA measures the best-vs-baseline area improvement that
// MNT Bench's optimal tool combinations deliver (E3, the ΔA column).
func BenchmarkDeltaA(b *testing.B) {
	benches := bench.BySet("Trindade16")
	for i := 0; i < b.N; i++ {
		db := core.Generate(context.Background(), benches, gatelib.QCAOne, tableLimits(), nil)
		improved, total := 0, 0
		worst := 0.0
		for _, bm := range benches {
			best := db.Best(bm.Set, bm.Name, gatelib.QCAOne)
			base := db.Baseline(bm.Set, bm.Name, gatelib.QCAOne)
			if best == nil || base == nil {
				continue
			}
			total++
			if best.Area < base.Area {
				improved++
			}
			d := (float64(best.Area) - float64(base.Area)) / float64(base.Area) * 100
			if d < worst {
				worst = d
			}
		}
		b.ReportMetric(float64(improved), "improved")
		b.ReportMetric(float64(total), "functions")
		b.ReportMetric(worst, "bestΔA-%")
	}
}

// BenchmarkWebInterface exercises the Figure 1 web interface (E4):
// filtered catalogue queries and .fgl downloads against a live server.
func BenchmarkWebInterface(b *testing.B) {
	benches := bench.BySet("Trindade16")[:3]
	db := core.Generate(context.Background(), benches, gatelib.QCAOne, tableLimits(), nil)
	srv := httptest.NewServer(server.New(db))
	defer srv.Close()
	paths := []string{
		"/api/benchmarks",
		"/api/benchmarks?library=QCA+ONE&best=1",
		"/api/benchmarks?algorithm=ortho",
		"/api/filters",
		"/",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("%s: status %d", p, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// BenchmarkRouterBestagon reproduces the §II claim that the best
// Bestagon flow for the EPFL router function needs a small fraction of
// the plain hexagonalization baseline's area (paper: 23.6% of [7]) (E5).
func BenchmarkRouterBestagon(b *testing.B) {
	bm, err := bench.ByName("EPFL", "router")
	if err != nil {
		b.Fatal(err)
	}
	n := bm.Build()
	prep, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		baseCart, err := ortho.Place(prep, ortho.Options{})
		if err != nil {
			b.Fatal(err)
		}
		baseline, err := hexagonal.Map(baseCart)
		if err != nil {
			b.Fatal(err)
		}
		cart, err := ortho.Place(prep, ortho.Options{InputOrder: inord.BarycenterOrder(prep)})
		if err != nil {
			b.Fatal(err)
		}
		hex, err := hexagonal.Map(cart)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := postlayout.Optimize(hex, postlayout.Options{MaxPasses: 2, Timeout: 60 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(opt.Area()) / float64(baseline.Area()) * 100
		b.ReportMetric(float64(baseline.Area()), "baseline-tiles")
		b.ReportMetric(float64(opt.Area()), "optimized-tiles")
		b.ReportMetric(ratio, "area-%of-baseline")
	}
}

// BenchmarkOrthoScaling measures ortho's runtime across circuit sizes
// (E6, the t column): the paper reports sub-second runtimes for the
// scalable flow on every benchmark.
func BenchmarkOrthoScaling(b *testing.B) {
	cases := []struct{ set, name string }{
		{"Trindade16", "mux21"},
		{"Fontes18", "parity"},
		{"ISCAS85", "c432"},
	}
	if fullRun() {
		cases = append(cases,
			struct{ set, name string }{"ISCAS85", "c5315"},
			struct{ set, name string }{"EPFL", "sin"},
		)
	}
	for _, c := range cases {
		bm, err := bench.ByName(c.set, c.name)
		if err != nil {
			b.Fatal(err)
		}
		n := bm.Build()
		prep, err := gatelib.QCAOne.Prepare(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, err := ortho.Place(prep, ortho.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(l.Area()), "tiles")
			}
		})
	}
}

// BenchmarkCampaign measures campaign scheduler throughput at one worker
// versus all CPU cores over the Trindade16 suite (E7). Beyond the
// speedup it asserts the tentpole determinism guarantee: both worker
// counts must render byte-identical Table I text once the measured
// wall-clock runtime column is zeroed (timing is a measurement, not a
// result; everything else — areas, algorithms, schemes, ΔA — must
// match exactly).
func BenchmarkCampaign(b *testing.B) {
	benches := bench.BySet("Trindade16")
	tables := make(map[int]string)
	for _, workers := range []int{1, runtime.NumCPU()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			limits := tableLimits()
			limits.Workers = workers
			limits.DiscardLayouts = true
			for i := 0; i < b.N; i++ {
				db := core.Generate(context.Background(), benches, gatelib.QCAOne, limits, nil)
				rows := db.TableI(benches, gatelib.QCAOne)
				if len(rows) != len(benches) {
					b.Fatalf("table rows = %d, want %d", len(rows), len(benches))
				}
				flows := len(db.Entries) + len(db.Failures)
				b.ReportMetric(float64(flows)/b.Elapsed().Seconds()*float64(b.N), "flows/s")
				for j := range rows {
					rows[j].RuntimeSec = 0
				}
				tables[workers] = core.RenderTableI(rows, gatelib.QCAOne)
			}
		})
	}
	if serial, parallel := tables[1], tables[runtime.NumCPU()]; serial != "" && parallel != "" && serial != parallel {
		b.Errorf("Table I differs between workers=1 and workers=%d:\n--- serial\n%s--- parallel\n%s",
			runtime.NumCPU(), serial, parallel)
	}
}

// BenchmarkExactMux21 measures the exact search on the paper's smallest
// showcase function (Table I reports < 1 s and area 12 for mux21).
func BenchmarkExactMux21(b *testing.B) {
	bm, err := bench.ByName("Trindade16", "mux21")
	if err != nil {
		b.Fatal(err)
	}
	limits := core.Limits{ExactTimeout: 10 * time.Second}
	flow := core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: core.AlgoExact}
	for i := 0; i < b.N; i++ {
		e, err := core.RunFlow(context.Background(), bm, flow, limits)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(e.Area), "tiles")
	}
}
