// Package repro's top-level benchmarks regenerate the paper's artifacts
// (see DESIGN.md, experiment index):
//
//	E1  BenchmarkTableIQCAOne    — Table I, QCA ONE half
//	E2  BenchmarkTableIBestagon  — Table I, Bestagon half
//	E3  BenchmarkDeltaA          — Table I, ΔA column
//	E4  BenchmarkWebInterface    — Figure 1 (filter + download requests)
//	E5  BenchmarkRouterBestagon  — §II claim: router function area ratio
//	E6  BenchmarkOrthoScaling    — runtime column t across circuit sizes
//	E7  BenchmarkCampaign        — scheduler throughput, workers=1 vs NumCPU
//	E9  BenchmarkSimulateWords/Scalar — bit-parallel vs per-pattern simulation
//	E10 BenchmarkRouteExpansions — A* frontier throughput on a 32x32 grid
//
// The benchmark bodies live in internal/perf/suite so that `mntbench
// perfsnap` can run the identical measurements programmatically and
// write BENCH_<n>.json trajectory snapshots (see docs/OBSERVABILITY.md,
// "Performance snapshots"); the functions here are thin `go test
// -bench` entry points around them. Each benchmark iteration
// regenerates its artifact from scratch and reports the headline
// quantities as custom metrics. The default scope is the small suites
// (Trindade16 / Fontes18) so `go test -bench=.` terminates in minutes;
// set MNTBENCH_FULL=1 to include the large ISCAS85/EPFL circuits like
// the paper's full table (slow: tens of minutes, several GB of memory).
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/perf/suite"
)

// BenchmarkTableIQCAOne regenerates the QCA ONE half of Table I (E1).
func BenchmarkTableIQCAOne(b *testing.B) { suite.BenchTableI(context.Background(), b, gatelib.QCAOne) }

// BenchmarkTableIBestagon regenerates the Bestagon half of Table I (E2).
func BenchmarkTableIBestagon(b *testing.B) {
	suite.BenchTableI(context.Background(), b, gatelib.Bestagon)
}

// BenchmarkDeltaA measures the best-vs-baseline area improvement that
// MNT Bench's optimal tool combinations deliver (E3, the ΔA column).
func BenchmarkDeltaA(b *testing.B) { suite.BenchDeltaA(context.Background(), b) }

// BenchmarkWebInterface exercises the Figure 1 web interface (E4):
// filtered catalogue queries and .fgl downloads against a live server.
func BenchmarkWebInterface(b *testing.B) { suite.BenchWebInterface(context.Background(), b) }

// BenchmarkRouterBestagon reproduces the §II claim that the best
// Bestagon flow for the EPFL router function needs a small fraction of
// the plain hexagonalization baseline's area (paper: 23.6% of [7]) (E5).
func BenchmarkRouterBestagon(b *testing.B) { suite.BenchRouterBestagon(b) }

// BenchmarkOrthoScaling measures ortho's runtime across circuit sizes
// (E6, the t column): the paper reports sub-second runtimes for the
// scalable flow on every benchmark.
func BenchmarkOrthoScaling(b *testing.B) {
	for _, c := range suite.OrthoCases(suite.FullRun()) {
		c := c
		b.Run(c.Name, func(b *testing.B) { suite.BenchOrthoCase(b, c) })
	}
}

// BenchmarkCampaign measures campaign scheduler throughput at one worker
// versus all CPU cores over the Trindade16 suite (E7). Beyond the
// speedup it asserts the tentpole determinism guarantee: both worker
// counts must render byte-identical Table I text once the measured
// wall-clock runtime column is zeroed (the suite body zeroes it before
// rendering).
func BenchmarkCampaign(b *testing.B) {
	tables := make(map[int]string)
	for _, workers := range []int{1, runtime.NumCPU()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tables[workers] = suite.BenchCampaign(context.Background(), b, workers)
		})
	}
	if serial, parallel := tables[1], tables[runtime.NumCPU()]; serial != "" && parallel != "" && serial != parallel {
		b.Errorf("Table I differs between workers=1 and workers=%d:\n--- serial\n%s--- parallel\n%s",
			runtime.NumCPU(), serial, parallel)
	}
}

// BenchmarkExactMux21 measures the exact search on the paper's smallest
// showcase function (Table I reports < 1 s and area 12 for mux21).
func BenchmarkExactMux21(b *testing.B) { suite.BenchExactMux21(context.Background(), b) }

// BenchmarkSimulateWords measures bit-parallel (64 vectors per call)
// simulation throughput on ISCAS85 c432 (E9/words).
func BenchmarkSimulateWords(b *testing.B) { suite.BenchSimulateWords(b) }

// BenchmarkSimulateScalar measures the per-pattern Simulate path over
// the same vector budget (E9/scalar); the vectors_per_sec ratio against
// BenchmarkSimulateWords is the bit-parallel speedup.
func BenchmarkSimulateScalar(b *testing.B) { suite.BenchSimulateScalar(b) }

// BenchmarkRouteExpansions measures A* search throughput on the
// allocation-free flat-grid frontier (E10).
func BenchmarkRouteExpansions(b *testing.B) { suite.BenchRouteExpansions(b) }
