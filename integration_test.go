package repro

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/fgl"
	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/inord"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/qcasim"
	"repro/internal/verify"
	"repro/internal/verilog"
)

// TestEndToEndPipeline runs a benchmark function through the complete
// tool stack: Verilog serialization, parsing, library preparation,
// placement, optimization, .fgl round trip, DRC, equivalence checking,
// netlist re-extraction, and cell-level physical simulation.
func TestEndToEndPipeline(t *testing.T) {
	b, err := bench.ByName("Trindade16", "fa")
	if err != nil {
		t.Fatal(err)
	}
	n := b.Build()

	// Network -> Verilog -> network.
	vtext, err := verilog.WriteString(n)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := verilog.ParseString(vtext)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := network.Equivalent(n, parsed)
	if err != nil || !eq {
		t.Fatalf("verilog round trip: %v %v", eq, err)
	}

	// Placement + optimization for QCA ONE.
	prep, err := gatelib.QCAOne.Prepare(parsed)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := postlayout.Optimize(placed, postlayout.Options{Timeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	opt.Library = gatelib.QCAOne.Name
	if err := verify.Check(opt, n); err != nil {
		t.Fatal(err)
	}

	// .fgl round trip.
	text, err := fgl.WriteString(opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fgl.ReadString(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(back, n); err != nil {
		t.Fatalf("after fgl round trip: %v", err)
	}

	// Layout -> netlist -> Verilog -> netlist.
	extracted, err := verify.ExtractNetwork(back)
	if err != nil {
		t.Fatal(err)
	}
	vtext2, err := verilog.WriteString(extracted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verilog.ParseString(vtext2); err != nil {
		t.Fatal(err)
	}

	// Cell expansion + physical simulation of the reloaded layout.
	cells, err := gatelib.ExpandQCAOne(back)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := qcasim.New(cells)
	if err != nil {
		t.Fatal(err)
	}
	simTT, err := engine.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	refTT, err := extracted.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := range simTT {
		for c := range simTT[r] {
			if simTT[r][c] != refTT[r][c] {
				t.Fatalf("physical simulation differs from logic at pattern %d output %d", r, c)
			}
		}
	}

	// QCADesigner export of the cells.
	var qca strings.Builder
	if err := export.WriteQCA(&qca, cells); err != nil {
		t.Fatal(err)
	}
	counts, err := export.QCACellCount(strings.NewReader(qca.String()))
	if err != nil {
		t.Fatal(err)
	}
	if counts["QCAD_CELL_INPUT"] != 3 || counts["QCAD_CELL_OUTPUT"] != 2 {
		t.Errorf("exported I/O cells: %v", counts)
	}
}

// TestEndToEndBestagonPipeline covers the hexagonal side: InOrd + ortho
// + 45° + PLO + .fgl + .sqd export.
func TestEndToEndBestagonPipeline(t *testing.T) {
	b, err := bench.ByName("Trindade16", "par_check")
	if err != nil {
		t.Fatal(err)
	}
	n := b.Build()
	prep, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	cart, _, err := inord.Place(prep, inord.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := hexagonal.Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := postlayout.Optimize(hex, postlayout.Options{Timeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	opt.Library = gatelib.Bestagon.Name
	if err := verify.Check(opt, n); err != nil {
		t.Fatal(err)
	}
	if err := gatelib.Bestagon.CheckLayout(opt); err != nil {
		t.Fatal(err)
	}
	if opt.Area() > hex.Area() {
		t.Error("PLO grew the hexagonal layout")
	}

	text, err := fgl.WriteString(opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fgl.ReadString(text)
	if err != nil {
		t.Fatal(err)
	}
	dots, err := gatelib.ExpandBestagon(back)
	if err != nil {
		t.Fatal(err)
	}
	var sqd strings.Builder
	if err := export.WriteSQD(&sqd, dots); err != nil {
		t.Fatal(err)
	}
	read, err := export.ReadSQDDots(strings.NewReader(sqd.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(read) != dots.NumCells() {
		t.Errorf("sqd round trip: %d dots, want %d", len(read), dots.NumCells())
	}
}

// TestBestLayoutSelection checks the MNT Bench core promise over a small
// generation run: the best entry per function never loses to any other
// generated flow, and the database filters agree with the entry set.
func TestBestLayoutSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("generation run in -short mode")
	}
	benches := []bench.Benchmark{
		mustBenchmark(t, "Trindade16", "xor2"),
		mustBenchmark(t, "Trindade16", "par_gen"),
	}
	limits := core.Limits{ExactTimeout: 2 * time.Second, NanoTimeout: 2 * time.Second, PLOTimeout: 5 * time.Second}
	db := core.Generate(context.Background(), benches, gatelib.QCAOne, limits, nil)
	for _, b := range benches {
		best := db.Best(b.Set, b.Name, gatelib.QCAOne)
		if best == nil {
			t.Fatalf("no best for %s", b.Name)
		}
		for _, e := range db.Select(core.Filter{Name: b.Name}) {
			if e.Area < best.Area {
				t.Errorf("%s: entry %s beats best (%d < %d)", b.Name, e.Flow, e.Area, best.Area)
			}
		}
		if !best.Verified {
			t.Errorf("%s: best entry not verified", b.Name)
		}
	}
	scheme := "2DDWave"
	for _, e := range db.Select(core.Filter{Scheme: scheme}) {
		if e.Flow.Scheme != clocking.TwoDDWave {
			t.Error("scheme filter leaked")
		}
	}
}

func mustBenchmark(t *testing.T, set, name string) bench.Benchmark {
	t.Helper()
	b, err := bench.ByName(set, name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
